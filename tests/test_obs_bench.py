"""BENCH document schema, the comparator, and the gate's self-check."""

import copy
import json
import pathlib
import sys

import pytest

from repro.obs.bench import (
    GATE_SCALE,
    SCHEMA,
    compare_bench,
    environment,
    load_bench_json,
    make_bench_result,
    write_bench_json,
)

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
from _check_obs_schema import check_bench  # noqa: E402


def doc(**overrides):
    base = make_bench_result(
        "unit",
        {"wall_s": {"value": 1.25, "unit": "s"},
         "per_job": {"value": 410.0, "unit": "us"},
         "speedup": {"value": 2.0, "unit": "x"}},
        {"attempts": 2220, "jobs": 300},
        repetitions=3,
        env=environment(GATE_SCALE),
    )
    base.update(overrides)
    return base


class TestMakeBenchResult:
    def test_shape(self):
        d = doc()
        assert d["schema"] == SCHEMA
        assert d["environment"]["scale"] == GATE_SCALE
        assert d["repetitions"] == 3

    def test_rejects_extra_quantity_keys(self):
        with pytest.raises(ValueError):
            make_bench_result(
                "x", {"q": {"value": 1.0, "unit": "s", "note": "nope"}}, {})

    def test_rejects_missing_unit(self):
        with pytest.raises(ValueError):
            make_bench_result("x", {"q": {"value": 1.0}}, {})

    def test_rejects_bool_counter(self):
        with pytest.raises(ValueError):
            make_bench_result("x", {}, {"flag": True})

    def test_rejects_non_int_counter(self):
        with pytest.raises(ValueError):
            make_bench_result("x", {}, {"n": 1.5})


class TestRoundtrip:
    def test_write_load(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        write_bench_json(doc(), path)
        assert load_bench_json(path) == doc()
        # Stable serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(
            doc(), indent=2, sort_keys=True) + "\n"

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(doc(schema="other/v9")))
        with pytest.raises(ValueError):
            load_bench_json(path)

    def test_checker_accepts_written_doc(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        write_bench_json(doc(), path)
        assert check_bench(str(path)) == []

    def test_checker_flags_negative_counter(self, tmp_path):
        bad = doc()
        bad["counters"]["attempts"] = -1
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(bad))
        assert check_bench(str(path))


class TestCompareBench:
    def test_identical_ok(self):
        verdict = compare_bench(doc(), copy.deepcopy(doc()))
        assert verdict["ok"] and not verdict["failures"]

    def test_counter_drift_fails(self):
        current = doc()
        current["counters"]["attempts"] += 1
        verdict = compare_bench(doc(), current)
        assert not verdict["ok"]
        assert any("attempts" in f for f in verdict["failures"])

    def test_wall_regression_fails_one_sided(self):
        slower = doc()
        slower["quantities"]["wall_s"]["value"] *= 10.0
        verdict = compare_bench(doc(), slower)
        assert not verdict["ok"]
        assert any("wall_s" in f for f in verdict["failures"])

    def test_wall_within_tolerance_ok(self):
        slower = doc()
        slower["quantities"]["wall_s"]["value"] *= 1.5
        assert compare_bench(doc(), slower)["ok"]

    def test_big_improvement_notes_not_fails(self):
        faster = doc()
        faster["quantities"]["wall_s"]["value"] /= 10.0
        verdict = compare_bench(doc(), faster)
        assert verdict["ok"]
        assert any("wall_s" in n for n in verdict["notes"])

    def test_non_time_unit_compared_exactly(self):
        drifted = doc()
        drifted["quantities"]["speedup"]["value"] *= 1.01
        verdict = compare_bench(doc(), drifted)
        assert not verdict["ok"]
        assert any("speedup" in f for f in verdict["failures"])

    def test_scale_mismatch_short_circuits(self):
        other = doc(environment=environment(GATE_SCALE * 2))
        verdict = compare_bench(doc(), other)
        assert not verdict["ok"]
        assert any("scale" in f for f in verdict["failures"])

    def test_missing_quantity_fails(self):
        current = doc()
        del current["quantities"]["per_job"]
        assert not compare_bench(doc(), current)["ok"]

    def test_missing_counter_fails(self):
        current = doc()
        del current["counters"]["jobs"]
        assert not compare_bench(doc(), current)["ok"]

    def test_custom_tolerance(self):
        slower = doc()
        slower["quantities"]["wall_s"]["value"] *= 1.5
        verdict = compare_bench(doc(), slower, wall_tolerance=0.2)
        assert not verdict["ok"]


class TestGateSelfCheck:
    """The gate's injected-regression logic, on a synthetic payload (the
    CLI ``--selftest`` exercises the same path on a real bench run)."""

    def test_injection_detected_and_clean_compares_clean(self):
        baseline = doc()
        regressed = json.loads(json.dumps(baseline))
        wall_label = next(iter(regressed["quantities"]))
        regressed["quantities"][wall_label]["value"] *= 10.0
        counter_label = next(iter(regressed["counters"]))
        regressed["counters"][counter_label] += 1

        verdict = compare_bench(baseline, regressed)
        assert not verdict["ok"]
        assert any(wall_label in f for f in verdict["failures"])
        assert any(counter_label in f for f in verdict["failures"])
        assert compare_bench(
            baseline, json.loads(json.dumps(baseline)))["ok"]

    def test_committed_baselines_validate(self):
        results = pathlib.Path(__file__).parent.parent / "benchmarks" / \
            "results"
        paths = sorted(results.glob("BENCH_*.json"))
        assert len(paths) == 4, paths
        for path in paths:
            assert check_bench(str(path)) == [], path
            loaded = load_bench_json(path)
            assert loaded["environment"]["scale"] == GATE_SCALE, path
