"""Event-ordering and edge-case behavior of the simulator."""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.core.jigsaw import JigsawAllocator
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


def run(tree, jobs, **kw):
    return Simulator(BaselineAllocator(tree), **kw).run(jobs)


def by_id(result):
    return {r.job_id: r for r in result.jobs}


class TestSimultaneousEvents:
    def test_completion_frees_resources_before_arrival(self, tree):
        """A job arriving exactly when the machine empties starts
        immediately — completions are processed first at equal times."""
        jobs = [
            Job(id=1, size=128, runtime=50.0, arrival=0.0),
            Job(id=2, size=128, runtime=10.0, arrival=50.0),
        ]
        result = run(tree, jobs)
        assert by_id(result)[2].start == pytest.approx(50.0)

    def test_simultaneous_arrivals_keep_id_order(self, tree):
        jobs = [
            Job(id=5, size=128, runtime=10.0),
            Job(id=3, size=128, runtime=10.0),
        ]
        result = run(tree, jobs)
        recs = by_id(result)
        # Trace sorting is by (arrival, id); raw job lists preserve their
        # given order, and FIFO respects it.
        assert recs[5].start < recs[3].start

    def test_many_equal_completion_times(self, tree):
        jobs = [Job(id=i, size=8, runtime=100.0) for i in range(16)]
        jobs.append(Job(id=99, size=128, runtime=10.0))
        result = run(tree, jobs)
        assert by_id(result)[99].start == pytest.approx(100.0)


class TestZeroAndTinyRuntimes:
    def test_subsecond_runtimes(self, tree):
        jobs = [Job(id=i, size=4, runtime=0.001) for i in range(50)]
        result = run(tree, jobs)
        assert len(result.jobs) == 50
        assert result.makespan >= 0.001


class TestQueueMechanics:
    def test_deep_queue_progresses(self, tree):
        """Thousands of queued jobs at time zero all complete (exercises
        the lazy-deletion head pointer)."""
        jobs = [
            Job(id=i, size=(i % 20) + 1, runtime=1.0 + (i % 3))
            for i in range(2000)
        ]
        result = Simulator(JigsawAllocator(tree)).run(jobs)
        assert len(result.jobs) == 2000
        assert not result.unscheduled

    def test_rerun_same_simulator_requires_fresh_allocator(self, tree):
        sim = Simulator(BaselineAllocator(tree))
        sim.run([Job(id=1, size=4, runtime=1.0)])
        # the allocator drained, so a second run also works
        result = sim.run([Job(id=2, size=4, runtime=1.0)])
        assert len(result.jobs) == 1

    def test_job_ids_may_repeat_across_runs(self, tree):
        sim = Simulator(BaselineAllocator(tree))
        for _ in range(2):
            result = sim.run([Job(id=7, size=4, runtime=1.0)])
            assert by_id(result)[7].end == pytest.approx(1.0)


class TestInstantSampling:
    def test_histogram_total_positive_under_load(self, tree):
        jobs = [Job(id=i, size=64, runtime=10.0) for i in range(6)]
        result = run(tree, jobs)
        assert result.instant.total > 0

    def test_no_samples_without_waiting(self, tree):
        # single job: never a non-empty queue at sampling time
        result = run(tree, [Job(id=1, size=4, runtime=5.0)])
        assert result.instant.total == 0
