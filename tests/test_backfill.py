"""EASY reservation arithmetic."""

import pytest

from repro.sched.backfill import Reservation, compute_reservation, may_backfill
from repro.sched.job import Job


class TestComputeReservation:
    def test_waits_for_enough_completions(self):
        running = [(100.0, 30), (50.0, 20), (200.0, 50)]
        res = compute_reservation(now=0.0, need=60, free_now=10, running=running)
        # 10 free + 20 at t=50 + 30 at t=100 = 60 -> shadow at t=100
        assert res.shadow_time == 100.0
        assert res.spare_nodes == 0

    def test_spare_nodes(self):
        running = [(50.0, 100)]
        res = compute_reservation(now=0.0, need=60, free_now=10, running=running)
        assert res.shadow_time == 50.0
        assert res.spare_nodes == 50

    def test_fragmentation_blocked_head_uses_next_completion(self):
        # enough nodes free but the allocator said no: shadow is the next
        # completion (the earliest the fragmentation pattern can change)
        running = [(80.0, 5), (40.0, 7)]
        res = compute_reservation(now=0.0, need=10, free_now=20, running=running)
        assert res.shadow_time == 40.0
        assert res.spare_nodes == 20 + 7 - 10

    def test_nothing_running_and_blocked(self):
        res = compute_reservation(now=5.0, need=10, free_now=20, running=[])
        assert res.shadow_time == 5.0

    def test_never_enough(self):
        res = compute_reservation(now=0.0, need=1000, free_now=0,
                                  running=[(10.0, 5)])
        assert res.shadow_time == float("inf")


class TestMayBackfill:
    def job(self, size=4):
        return Job(id=1, size=size, runtime=10.0)

    def test_fits_before_shadow(self):
        res = Reservation(shadow_time=100.0, spare_nodes=0)
        assert may_backfill(self.job(), now=0.0, walltime=99.0, free_now=50,
                            effective_size=40, reservation=res)
        assert not may_backfill(self.job(), now=5.0, walltime=99.0, free_now=50,
                                effective_size=40, reservation=res)

    def test_fits_in_spare(self):
        res = Reservation(shadow_time=10.0, spare_nodes=8)
        assert may_backfill(self.job(), now=0.0, walltime=1000.0, free_now=50,
                            effective_size=8, reservation=res)
        assert not may_backfill(self.job(), now=0.0, walltime=1000.0, free_now=50,
                                effective_size=9, reservation=res)

    def test_spare_limited_by_current_free(self):
        res = Reservation(shadow_time=10.0, spare_nodes=100)
        assert not may_backfill(self.job(), now=0.0, walltime=1000.0, free_now=5,
                                effective_size=8, reservation=res)
