"""Subnet manager: on-the-fly routing updates across job lifecycles."""

import random

import pytest

from repro.core.registry import make_allocator
from repro.routing.subnet import SubnetManager
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


@pytest.fixture
def manager(tree):
    return SubnetManager(tree)


def links_of_path(tree, path, src, dst):
    """Reconstruct the (undirected) cable identities a switch path uses."""
    cables = set()
    for a, b in zip(path, path[1:]):
        kinds = {a[0], b[0]}
        if kinds == {"leaf", "l2"}:
            leaf = a[1] if a[0] == "leaf" else b[1]
            i = (a if a[0] == "l2" else b)[2]
            cables.add(("leaf", leaf, i))
        elif kinds == {"l2", "spine"}:
            l2 = a if a[0] == "l2" else b
            spine = a if a[0] == "spine" else b
            cables.add(("spine", l2[1], l2[2], spine[2]))
    return cables


class TestLifecycle:
    def test_default_routing_without_jobs(self, tree, manager):
        path = manager.forward(0, 100)
        assert path[0] == ("leaf", tree.leaf_of_node(0))
        assert path[-1] == ("leaf", tree.leaf_of_node(100))
        assert manager.overlay_entries == 0

    def test_install_confines_job_traffic(self, tree, manager):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, 9)
        manager.install(alloc)
        owned_leaf = {("leaf", l.leaf, l.l2_index) for l in alloc.leaf_links}
        nodes = sorted(alloc.nodes)
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                path = manager.forward(src, dst)
                for cable in links_of_path(tree, path, src, dst):
                    if cable[0] == "leaf":
                        assert cable in owned_leaf, (src, dst, cable)

    def test_remove_restores_default(self, tree, manager):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, 9)
        manager.install(alloc)
        entries = manager.overlay_entries
        assert entries > 0
        removed = manager.remove(1)
        assert removed == entries
        assert manager.overlay_entries == 0
        # traffic to the (now free) nodes follows the default again
        src, dst = sorted(alloc.nodes)[:2]
        assert manager.forward(src, dst)

    def test_overlay_only_touches_job_destinations(self, tree, manager):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, 9)
        manager.install(alloc)
        outside = max(alloc.nodes) + tree.m1
        # traffic to foreign destinations is unaffected by the overlay
        default = SubnetManager(tree)
        assert manager.forward(0, outside) == default.forward(0, outside)

    def test_destination_ownership(self, tree, manager):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(7, 6)
        manager.install(alloc)
        assert manager.owner_of_destination(alloc.nodes[0]) == 7
        assert manager.owner_of_destination(tree.num_nodes - 1) is None
        assert manager.installed_jobs == {7}

    def test_double_install_rejected(self, tree, manager):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, 6)
        manager.install(alloc)
        with pytest.raises(ValueError):
            manager.install(alloc)

    def test_remove_unknown_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.remove(3)


class TestChurn:
    def test_many_jobs_cycling(self, tree, manager):
        """Allocate/install and release/remove under churn; every live
        job's internal traffic always delivered."""
        allocator = make_allocator("jigsaw", tree)
        rng = random.Random(3)
        live = {}
        jid = 0
        for _ in range(150):
            if live and (rng.random() < 0.45 or len(live) > 12):
                victim = rng.choice(sorted(live))
                allocator.release(victim)
                manager.remove(victim)
                del live[victim]
            else:
                jid += 1
                alloc = allocator.allocate(jid, rng.choice([2, 4, 6, 9, 13]))
                if alloc is None:
                    continue
                manager.install(alloc)
                live[jid] = alloc
            for alloc in live.values():
                nodes = sorted(alloc.nodes)
                if len(nodes) >= 2:
                    path = manager.forward(nodes[0], nodes[-1])
                    assert path[-1] == ("leaf", tree.leaf_of_node(nodes[-1]))
        # drain
        for victim in sorted(live):
            manager.remove(victim)
        assert manager.overlay_entries == 0
