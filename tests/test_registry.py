"""Scheme registry."""

import pytest

from repro.core.registry import ALLOCATOR_NAMES, make_allocator
from repro.topology.fattree import FatTree


def test_all_paper_schemes_constructible():
    tree = FatTree.from_radix(8)
    for name in ALLOCATOR_NAMES:
        allocator = make_allocator(name, tree)
        assert allocator.name == name
        assert allocator.allocate(1, 4) is not None


def test_lc_variant():
    tree = FatTree.from_radix(8)
    lc = make_allocator("lc", tree)
    assert lc.name == "lc"
    assert lc.isolating


def test_case_insensitive():
    tree = FatTree.from_radix(8)
    assert make_allocator("Jigsaw", tree).name == "jigsaw"


def test_unknown_scheme():
    with pytest.raises(ValueError, match="unknown scheme"):
        make_allocator("slurm", FatTree.from_radix(8))


def test_kwargs_forwarded():
    tree = FatTree.from_radix(8)
    a = make_allocator("jigsaw", tree, order="sparse", strategy="first")
    assert a.order == "sparse"
    assert a.strategy == "first"
