"""FreeProfile: the planning substrate for conservative backfilling."""

import pytest

from repro.sched.profile import FOREVER, FreeProfile


class TestBasics:
    def test_flat_profile(self):
        p = FreeProfile(now=0.0, free_now=10)
        assert p.free_at(0.0) == 10
        assert p.free_at(100.0) == 10
        assert p.earliest_fit(10, 5.0) == 0.0
        assert p.earliest_fit(11, 5.0) == FOREVER

    def test_release_increases_future_free(self):
        p = FreeProfile(0.0, 4)
        p.release_at(10.0, 6)
        assert p.free_at(9.9) == 4
        assert p.free_at(10.0) == 10
        assert p.earliest_fit(10, 1.0) == 10.0

    def test_reserve_consumes_interval(self):
        p = FreeProfile(0.0, 10)
        p.reserve(5.0, 15.0, 8)
        assert p.free_at(4.9) == 10
        assert p.free_at(5.0) == 2
        assert p.free_at(15.0) == 10
        # a short narrow job fits before the reservation begins ...
        assert p.earliest_fit(3, 1.0) == 0.0
        assert p.earliest_fit(10, 1.0) == 0.0  # [0,1) is clear of it too
        # ... but anything wide whose run overlaps [5,15) must wait
        assert p.earliest_fit(10, 6.0) == 15.0

    def test_fit_must_hold_for_whole_duration(self):
        p = FreeProfile(0.0, 10)
        p.reserve(5.0, 15.0, 8)
        # 3 nodes for 10s starting at 0 would overlap [5,15) with only 2
        assert p.earliest_fit(3, 10.0) == 15.0
        assert p.earliest_fit(2, 10.0) == 0.0

    def test_past_release_adjusts_base(self):
        p = FreeProfile(10.0, 4)
        p.release_at(5.0, 3)  # already happened
        assert p.free_at(10.0) == 7

    def test_infinite_reservation(self):
        p = FreeProfile(0.0, 10)
        p.reserve(2.0, FOREVER, 10)
        assert p.earliest_fit(1, 1.0) == 0.0
        assert p.earliest_fit(10, 3.0) == FOREVER

    def test_min_free(self):
        p = FreeProfile(0.0, 10)
        p.reserve(5.0, 6.0, 4)
        assert p.min_free(0.0, 10.0) == 6
        assert p.min_free(6.0, 10.0) == 10

    def test_validation(self):
        p = FreeProfile(0.0, 5)
        with pytest.raises(ValueError):
            p.release_at(1.0, -1)
        with pytest.raises(ValueError):
            p.reserve(2.0, 1.0, 3)
        with pytest.raises(ValueError):
            p.reserve(1.0, 1.0, 3)


class TestComposition:
    def test_stacked_reservations(self):
        p = FreeProfile(0.0, 10)
        p.reserve(0.0, 10.0, 4)
        p.reserve(0.0, 5.0, 4)
        assert p.free_at(0.0) == 2
        assert p.free_at(5.0) == 6
        assert p.earliest_fit(6, 2.0) == 5.0
        assert p.earliest_fit(8, 2.0) == 10.0

    def test_release_then_reserve(self):
        p = FreeProfile(0.0, 0)
        p.release_at(10.0, 8)
        p.reserve(10.0, 20.0, 8)
        assert p.free_at(10.0) == 0
        assert p.earliest_fit(8, 1.0) == 20.0
