"""TA: containment rules, implicit reservation, Figure 2 scenarios."""

import pytest

from repro.core.ta import TopologyAwareAllocator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # m1=m2=4, pod=16


@pytest.fixture
def alloc(tree):
    return TopologyAwareAllocator(tree)


class TestClassification:
    def test_classes(self, tree, alloc):
        assert alloc.classify(1) == "t1"
        assert alloc.classify(tree.m1) == "t1"
        assert alloc.classify(tree.m1 + 1) == "t2"
        assert alloc.classify(tree.nodes_per_pod) == "t2"
        assert alloc.classify(tree.nodes_per_pod + 1) == "t3"


class TestT1Rules:
    def test_t1_confined_to_one_leaf(self, tree, alloc):
        a = alloc.allocate(1, 3)
        assert len({n // tree.m1 for n in a.nodes}) == 1
        assert a.leaf_links == () and a.spine_links == ()

    def test_figure2_right_external_fragmentation(self, tree, alloc):
        """Figure 2 (right): three nodes are free but no single leaf has
        three, so a 3-node job cannot be placed."""
        jid = 0
        for leaf in range(tree.num_leaves):
            jid += 1
            nodes = list(tree.nodes_of_leaf(leaf))
            alloc.state.claim(jid, nodes[: tree.m1 - 1])  # leave 1 free each
        assert alloc.free_nodes == tree.num_leaves
        assert alloc.allocate(9999, 3) is None  # plenty free, none usable

    def test_t1_can_share_leaf_with_t1(self, tree, alloc):
        a1 = alloc.allocate(1, 2)
        a2 = alloc.allocate(2, 2)
        # best-fit packs the second small job onto the same leaf
        assert {n // tree.m1 for n in a1.nodes} == {n // tree.m1 for n in a2.nodes}

    def test_t1_excluded_from_reserved_leaf_when_strict(self, tree):
        strict = TopologyAwareAllocator(tree, t1_shares_multi_leaf=False)
        t2 = strict.allocate(1, 6)  # spans 2 leaves, reserves both
        t2_leaves = {n // tree.m1 for n in t2.nodes}
        for jid in range(2, 40):
            a = strict.allocate(jid, 2)
            if a is None:
                break
            assert not ({n // tree.m1 for n in a.nodes} & t2_leaves)

    def test_t1_may_share_reserved_leaf_when_permissive(self, tree):
        perm = TopologyAwareAllocator(tree, t1_shares_multi_leaf=True)
        t2 = perm.allocate(1, 6)
        t2_leaves = {n // perm.tree.m1 for n in t2.nodes}
        placements = set()
        for jid in range(2, 70):
            a = perm.allocate(jid, 1)
            if a is None:
                break
            placements |= {n // perm.tree.m1 for n in a.nodes}
        assert placements & t2_leaves  # eventually lands on a reserved leaf


class TestT2Rules:
    def test_t2_confined_to_one_pod(self, tree, alloc):
        a = alloc.allocate(1, 10)
        assert len({tree.pod_of_node(n) for n in a.nodes}) == 1

    def test_t2_jobs_never_share_leaves(self, tree, alloc):
        a1 = alloc.allocate(1, 6)
        a2 = alloc.allocate(2, 6)
        leaves1 = {n // tree.m1 for n in a1.nodes}
        leaves2 = {n // tree.m1 for n in a2.nodes}
        assert not leaves1 & leaves2

    def test_t2_blocked_without_clean_leaves_in_any_single_pod(self, tree, alloc):
        # Reserve one leaf per pod via a T2 job footprint of 5 nodes
        # (2 leaves), repeated so every pod has at most 2 clean leaves =
        # 8 free-on-clean nodes; then a 9-node T2 job fails everywhere.
        jid = 0
        for pod in range(tree.num_pods):
            jid += 1
            leaves = list(tree.leaves_of_pod(pod))
            nodes = list(tree.nodes_of_leaf(leaves[0])) + list(
                tree.nodes_of_leaf(leaves[1])
            )[:1]
            alloc.state.claim(jid, nodes)
            alloc._multi_owner[leaves[0]] = jid
            alloc._multi_owner[leaves[1]] = jid
            alloc._job_meta[jid] = ("t2", (leaves[0], leaves[1]), (pod,))
            alloc.allocations[jid] = None  # not used by search
        assert alloc.allocate(9999, 9) is None

    def test_release_clears_reservation(self, tree, alloc):
        a = alloc.allocate(1, 6)
        leaves = {n // tree.m1 for n in a.nodes}
        alloc.release(1)
        for leaf in leaves:
            assert alloc._multi_owner[leaf] == -1
        # the leaves are usable by another T2 again
        a2 = alloc.allocate(2, 6)
        assert a2 is not None


class TestT3Rules:
    def test_one_t3_per_pod(self, tree, alloc):
        a1 = alloc.allocate(1, tree.nodes_per_pod + 4)  # T3 across 2 pods
        pods1 = {tree.pod_of_node(n) for n in a1.nodes}
        a2 = alloc.allocate(2, tree.nodes_per_pod + 4)
        pods2 = {tree.pod_of_node(n) for n in a2.nodes}
        assert not pods1 & pods2

    def test_t3_exact_node_count(self, tree, alloc):
        a = alloc.allocate(1, tree.nodes_per_pod + 3)
        assert len(a.nodes) == tree.nodes_per_pod + 3  # no internal node frag

    def test_t3_release_frees_pods(self, tree, alloc):
        a = alloc.allocate(1, tree.nodes_per_pod + 4)
        pods = {tree.pod_of_node(n) for n in a.nodes}
        alloc.release(1)
        for pod in pods:
            assert alloc._t3_owner[pod] == -1

    def test_whole_machine_t3(self, tree, alloc):
        a = alloc.allocate(1, tree.num_nodes)
        assert a is not None
        assert len(a.nodes) == tree.num_nodes

    def test_t3_blocked_when_all_pods_have_t3(self, tree, alloc):
        # Two T3 jobs spanning 4 pods each block all 8 pods
        alloc.allocate(1, 4 * tree.nodes_per_pod - 2)
        alloc.allocate(2, 4 * tree.nodes_per_pod - 2)
        used_pods = set(p for p, o in enumerate(alloc._t3_owner) if o != -1)
        if len(used_pods) == tree.num_pods:
            assert alloc.allocate(3, tree.nodes_per_pod + 1) is None
