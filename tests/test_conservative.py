"""Conservative backfilling and walltime-estimate extensions."""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.core.jigsaw import JigsawAllocator
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # 128 nodes


def run(tree, jobs, **kwargs):
    return Simulator(BaselineAllocator(tree), **kwargs).run(jobs)


def by_id(result):
    return {r.job_id: r for r in result.jobs}


class TestConservativePolicy:
    def test_backfills_when_harmless(self, tree):
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=100, runtime=10.0),   # waits for t=100
            Job(id=3, size=20, runtime=50.0),    # ends before job 2 starts
        ]
        result = run(tree, jobs, backfill_policy="conservative")
        recs = by_id(result)
        assert recs[3].start == 0.0
        assert recs[2].start == pytest.approx(100.0)

    def test_never_delays_earlier_reservation(self, tree):
        """Job 4 fits now and EASY's spare rule lets it run, but its run
        would overlap job 3's reservation window — conservative refuses."""
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=100, runtime=100.0),  # reserved at t=100
            Job(id=3, size=120, runtime=10.0),   # reserved at t=200
            Job(id=4, size=28, runtime=250.0),   # would overlap [200,210)
        ]
        easy = run(tree, jobs, backfill_policy="easy")
        assert by_id(easy)[4].start == 0.0  # the spare rule admits it
        cons = run(tree, jobs, backfill_policy="conservative")
        recs = by_id(cons)
        assert recs[3].start == pytest.approx(200.0)
        assert recs[4].start >= 210.0  # after job 3's window, not inside it

    def test_all_jobs_complete(self, tree):
        jobs = [
            Job(id=i, size=(i * 7) % 40 + 1, runtime=5.0 + i % 11)
            for i in range(150)
        ]
        result = run(tree, jobs, backfill_policy="conservative")
        assert len(result.jobs) == 150
        assert not result.unscheduled

    def test_works_with_constrained_allocator(self, tree):
        jobs = [Job(id=i, size=(i % 25) + 1, runtime=10.0) for i in range(100)]
        result = Simulator(
            JigsawAllocator(tree), backfill_policy="conservative"
        ).run(jobs)
        assert len(result.jobs) == 100

    def test_unknown_policy_rejected(self, tree):
        with pytest.raises(ValueError, match="backfill policy"):
            Simulator(BaselineAllocator(tree), backfill_policy="greedy")


class TestWalltimeEstimates:
    def test_factor_below_one_rejected(self, tree):
        with pytest.raises(ValueError, match="estimate_factor"):
            Simulator(BaselineAllocator(tree), estimate_factor=0.5)

    def test_actual_completion_unaffected(self, tree):
        jobs = [Job(id=1, size=10, runtime=100.0)]
        result = run(tree, jobs, estimate_factor=3.0)
        assert by_id(result)[1].end == pytest.approx(100.0)

    def test_uniform_overestimation_keeps_shadow_rule_consistent(self, tree):
        """When every estimate scales by the same factor, the
        finishes-before-shadow comparison scales on both sides, so a
        marginal backfill decision is unchanged — the factor's real
        effects are early completions and spare-rule interplay."""
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=120, runtime=10.0),   # shadow at job 1's est end
            Job(id=3, size=28, runtime=99.0),    # just fits before it
        ]
        for factor in (1.0, 2.0):
            result = run(tree, jobs, estimate_factor=factor)
            assert by_id(result)[3].start == 0.0, factor

    def test_estimates_used_for_planning_are_scaled(self, tree):
        """Conservative reservations are spaced by estimated walltimes,
        so a job planned behind an overestimated one still starts at the
        real completion (the next scheduling event re-plans)."""
        jobs = [
            Job(id=1, size=128, runtime=10.0),
            Job(id=2, size=128, runtime=10.0),
        ]
        result = run(
            tree, jobs, backfill_policy="conservative", estimate_factor=4.0
        )
        assert by_id(result)[2].start == pytest.approx(10.0)

    def test_early_completion_reopens_capacity(self, tree):
        """With overestimates, jobs finish before their estimated end and
        the free capacity is usable immediately."""
        jobs = [
            Job(id=1, size=128, runtime=10.0),
            Job(id=2, size=128, runtime=10.0),
        ]
        result = run(tree, jobs, estimate_factor=5.0)
        assert by_id(result)[2].start == pytest.approx(10.0)
