"""The constructive rearrangeable-non-blocking router (Appendix A)."""

import random

import pytest

from repro.core.jigsaw import JigsawAllocator
from repro.core.laas import LaaSAllocator
from repro.routing.rearrange import (
    _decompose_regular,
    full_machine_allocation,
    route_permutation,
    verify_one_flow_per_link,
)
from repro.topology.fattree import FatTree


def random_perm(nodes, rng):
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    return dict(zip(nodes, shuffled))


class TestDecomposition:
    def test_regular_multigraph_decomposes(self):
        # 2-regular: two vertices, parallel edges and self-loops
        edges = [("a", "b", (1, 2)), ("b", "a", (3, 4)),
                 ("a", "a", None), ("b", "b", None)]
        rounds = _decompose_regular(edges, 2)
        assert len(rounds) == 2
        for rnd in rounds:
            srcs = [u for u, _, _ in rnd]
            dsts = [v for _, v, _ in rnd]
            assert sorted(srcs) == ["a", "b"]
            assert sorted(dsts) == ["a", "b"]

    def test_zero_degree(self):
        assert _decompose_regular([], 0) == []

    def test_irregular_graph_raises(self):
        edges = [("a", "b", None), ("a", "b", None)]  # b never sends
        with pytest.raises(RuntimeError):
            _decompose_regular(edges, 2)


class TestFullMachine:
    @pytest.mark.parametrize("radix", [4, 6, 8])
    def test_theorem5_full_fat_tree_is_rnb(self, radix):
        tree = FatTree.from_radix(radix)
        alloc = full_machine_allocation(tree)
        rng = random.Random(radix)
        for _ in range(3):
            perm = random_perm(list(alloc.nodes), rng)
            assignments = route_permutation(tree, alloc, perm)
            assert verify_one_flow_per_link(tree, alloc, assignments) == []

    def test_identity_permutation_uses_no_links(self):
        tree = FatTree.from_radix(4)
        alloc = full_machine_allocation(tree)
        perm = {n: n for n in alloc.nodes}
        assignments = route_permutation(tree, alloc, perm)
        assert all(a.l2_index is None for a in assignments.values())


class TestPartitions:
    @pytest.mark.parametrize("size", [2, 5, 8, 9, 11, 16, 20, 33, 48, 64])
    def test_theorem6_jigsaw_allocations_are_rnb(self, size):
        tree = FatTree.from_radix(8)
        allocator = JigsawAllocator(tree)
        alloc = allocator.allocate(1, size)
        rng = random.Random(size)
        for _ in range(3):
            perm = random_perm(sorted(alloc.nodes), rng)
            assignments = route_permutation(tree, alloc, perm)
            assert verify_one_flow_per_link(tree, alloc, assignments) == []

    def test_laas_allocations_are_rnb(self):
        tree = FatTree.from_radix(8)
        allocator = LaaSAllocator(tree)
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                allocator.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        alloc = allocator.allocate(1, 13)
        rng = random.Random(0)
        perm = random_perm(sorted(alloc.nodes), rng)
        assignments = route_permutation(tree, alloc, perm)
        assert verify_one_flow_per_link(tree, alloc, assignments) == []

    def test_fragmented_live_allocations_are_rnb(self):
        tree = FatTree.from_radix(8)
        allocator = JigsawAllocator(tree)
        rng = random.Random(99)
        live = {}
        jid = 0
        checked = 0
        for _ in range(300):
            if live and (rng.random() < 0.4 or len(live) > 20):
                allocator.release(live.popitem()[0])
            else:
                jid += 1
                alloc = allocator.allocate(jid, rng.choice([3, 6, 9, 13, 20, 34]))
                if alloc:
                    live[jid] = alloc
                    if checked < 25:
                        perm = random_perm(sorted(alloc.nodes), rng)
                        a = route_permutation(tree, alloc, perm)
                        assert verify_one_flow_per_link(tree, alloc, a) == []
                        checked += 1
        assert checked >= 20


class TestValidation:
    def test_perm_must_be_bijection(self):
        tree = FatTree.from_radix(4)
        allocator = JigsawAllocator(tree)
        alloc = allocator.allocate(1, 4)
        nodes = sorted(alloc.nodes)
        with pytest.raises(ValueError):
            route_permutation(tree, alloc, {nodes[0]: nodes[0]})
        with pytest.raises(ValueError):
            route_permutation(
                tree, alloc, {n: nodes[0] for n in nodes}
            )

    def test_verifier_catches_shared_link(self):
        from repro.routing.rearrange import FlowAssignment

        tree = FatTree.from_radix(4)
        alloc = full_machine_allocation(tree)
        # two flows from the same leaf forced onto the same up index
        bad = {
            (0, 2): FlowAssignment(0, 2, l2_index=0),
            (1, 3): FlowAssignment(1, 3, l2_index=0),
        }
        violations = verify_one_flow_per_link(tree, alloc, bad)
        assert any("share" in v for v in violations)

    def test_verifier_catches_missing_links(self):
        from repro.routing.rearrange import FlowAssignment

        tree = FatTree.from_radix(4)
        alloc = full_machine_allocation(tree)
        bad = {(0, 2): FlowAssignment(0, 2)}  # cross-leaf without links
        violations = verify_one_flow_per_link(tree, alloc, bad)
        assert any("without links" in v for v in violations)
