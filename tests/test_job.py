"""Job dataclass: validation and derived quantities."""

import pytest

from repro.sched.job import Job


def test_valid_job():
    j = Job(id=1, size=4, runtime=100.0, arrival=5.0)
    assert j.isolated_runtime == 100.0
    j.speedup = 0.25
    assert j.isolated_runtime == pytest.approx(80.0)
    assert j.runtime_under(low_interference=True) == pytest.approx(80.0)
    assert j.runtime_under(low_interference=False) == 100.0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(size=0, runtime=1.0),
        dict(size=-1, runtime=1.0),
        dict(size=1, runtime=0.0),
        dict(size=1, runtime=-5.0),
        dict(size=1, runtime=1.0, arrival=-1.0),
        dict(size=1, runtime=1.0, speedup=-0.1),
    ],
)
def test_invalid_jobs_rejected(kwargs):
    with pytest.raises(ValueError):
        Job(id=1, **kwargs)


def test_turnaround_and_wait():
    j = Job(id=1, size=2, runtime=10.0, arrival=3.0)
    with pytest.raises(ValueError):
        _ = j.turnaround
    with pytest.raises(ValueError):
        _ = j.wait
    j.start, j.end = 8.0, 18.0
    assert j.wait == 5.0
    assert j.turnaround == 15.0


def test_reset():
    j = Job(id=1, size=2, runtime=10.0)
    j.start, j.end = 1.0, 11.0
    j.reset()
    assert j.start < 0 and j.end < 0
