"""Contention analysis: interference measured, not asserted."""

import pytest

from repro.core.registry import make_allocator
from repro.routing.contention import (
    contention_report,
    link_load,
    permutation_traffic,
    route_flows,
)
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


@pytest.fixture
def packed(tree):
    allocator = make_allocator("jigsaw", tree)
    allocations = []
    for jid, size in enumerate([5, 11, 20, 9, 16, 33], start=1):
        alloc = allocator.allocate(jid, size)
        assert alloc is not None
        allocations.append(alloc)
    return allocations


class TestTrafficGeneration:
    def test_permutation_traffic_is_partial_permutation(self, packed):
        flows = permutation_traffic(packed, seed=0)
        for alloc in packed:
            srcs = [s for j, s, d in flows if j == alloc.job_id]
            dsts = [d for j, s, d in flows if j == alloc.job_id]
            assert len(set(srcs)) == len(srcs)
            assert len(set(dsts)) == len(dsts)
            assert set(srcs) <= set(alloc.nodes)
            assert set(dsts) <= set(alloc.nodes)

    def test_no_self_flows(self, packed):
        flows = permutation_traffic(packed, seed=0)
        assert all(s != d for _, s, d in flows)

    def test_deterministic_by_seed(self, packed):
        assert permutation_traffic(packed, seed=3) == permutation_traffic(
            packed, seed=3
        )


class TestRouting:
    def test_partition_routes_confined(self, tree, packed):
        flows = permutation_traffic(packed, seed=1)
        by_id = {a.job_id: a for a in packed}
        routes = route_flows(tree, flows, allocations=by_id)
        from repro.routing.dmodk import route_stays_inside

        for (job_id, _s, _d), route in routes.items():
            assert route_stays_inside(route, by_id[job_id])

    def test_link_load_counts_every_hop(self, tree, packed):
        flows = permutation_traffic(packed, seed=1)
        routes = route_flows(tree, flows)
        load = link_load(routes)
        total_hops = sum(r.hops for r in routes.values())
        assert sum(len(v) for v in load.values()) == total_hops


class TestReports:
    def test_partition_routing_is_inter_job_interference_free(self, tree, packed):
        report = contention_report(tree, packed, seed=1,
                                   use_partition_routing=True)
        assert report.interference_free
        assert all(j.interfered_flows == 0 for j in report.jobs.values())

    def test_rearranged_routing_reaches_slowdown_one(self, tree, packed):
        report = contention_report(tree, packed, seed=1,
                                   use_partition_routing=True, rearranged=True)
        assert report.interference_free
        assert report.max_link_sharing == 1
        assert report.mean_slowdown == 1.0
        assert report.congested_links == 0

    def test_baseline_routing_interferes_under_load(self, tree):
        """With the machine packed by a node-oblivious allocator, shared
        D-mod-k produces inter-job link sharing."""
        allocator = make_allocator("baseline", tree)
        allocations = []
        jid = 0
        for size in [10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 14, 14]:
            jid += 1
            alloc = allocator.allocate(jid, size)
            assert alloc is not None
            allocations.append(alloc)
        interfered = 0
        for seed in range(4):
            report = contention_report(tree, allocations, seed=seed)
            interfered += sum(
                j.interfered_flows for j in report.jobs.values()
            )
        assert interfered > 0

    def test_report_covers_all_jobs(self, tree, packed):
        report = contention_report(tree, packed, seed=1)
        assert set(report.jobs) == {a.job_id for a in packed}

    def test_summary_text(self, tree, packed):
        report = contention_report(tree, packed, seed=1)
        text = report.summary()
        assert "jobs: 6" in text
        assert "slowdown" in text

    def test_single_node_jobs_never_interfere(self, tree):
        allocator = make_allocator("jigsaw", tree)
        allocations = [allocator.allocate(j, 1) for j in range(1, 6)]
        report = contention_report(tree, allocations, seed=0)
        assert report.interference_free
        assert report.max_link_sharing == 1
