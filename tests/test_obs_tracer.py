"""Span tracer: recording, no-op discipline, exports, summarize."""

import io
import json

import pytest

from repro.obs.tracer import (
    Tracer,
    get_tracer,
    load_trace_events,
    set_tracer,
    summarize_trace,
)


class TestRecording:
    def test_disabled_span_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("sched.pass", queue=3):
            pass
        tracer.instant("sched.start", {"job": 1})
        assert tracer.events == []

    def test_disabled_span_is_falsy_shared_noop(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("alloc.search")
        b = tracer.span("sched.pass")
        assert a is b  # one shared no-op object
        assert not a
        a.set(anything="goes")  # silently ignored

    def test_enabled_span_records_name_duration_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("alloc.search", scheme="jigsaw") as span:
            span.set(outcome="placed")
        (event,) = tracer.events
        assert event["name"] == "alloc.search"
        assert event["dur"] >= 0.0
        assert event["attrs"] == {"scheme": "jigsaw", "outcome": "placed"}

    def test_begin_end_pair_matches_context_manager(self):
        tracer = Tracer(enabled=True)
        span = tracer.begin("sched.pass")
        span.set(started=2)
        tracer.end(span)
        (event,) = tracer.events
        assert event["name"] == "sched.pass"
        assert event["attrs"] == {"started": 2}

    def test_nesting_depth_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("sched.pass"):
            with tracer.span("alloc.search"):
                pass
        by_name = {e["name"]: e for e in tracer.events}
        assert by_name["sched.pass"]["depth"] == 0
        assert by_name["alloc.search"]["depth"] == 1

    def test_sim_time_snapshot(self):
        tracer = Tracer(enabled=True)
        tracer.sim_time = 1234.5
        with tracer.span("sched.pass"):
            pass
        tracer.instant("sched.start")
        assert all(e["sim_time"] == 1234.5 for e in tracer.events)

    def test_max_events_counts_drops(self):
        tracer = Tracer(enabled=True, max_events=2)
        for _ in range(5):
            with tracer.span("sched.pass"):
                pass
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_clear(self):
        tracer = Tracer(enabled=True, max_events=1)
        with tracer.span("a"):
            pass
        tracer.instant("b")
        tracer.clear()
        assert tracer.events == [] and tracer.dropped == 0


class TestGlobalTracer:
    def test_get_returns_disabled_by_default(self):
        assert get_tracer().enabled is False

    def test_set_swaps_and_returns_previous(self):
        mine = Tracer(enabled=True)
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestExports:
    def _tracer(self):
        tracer = Tracer(enabled=True)
        tracer.sim_time = 10.0
        with tracer.span("alloc.search", scheme="ta"):
            pass
        tracer.instant("sched.start", {"job": 7})
        return tracer

    def test_chrome_trace_shape(self):
        doc = self._tracer().to_chrome_trace()
        span, instant = doc["traceEvents"]
        assert span["ph"] == "X" and span["dur"] >= 0
        assert span["cat"] == "alloc"
        assert span["args"] == {"scheme": "ta", "sim_time": 10.0}
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert "dur" not in instant
        for e in (span, instant):
            assert {"name", "ts", "pid", "tid"} <= set(e)

    def test_chrome_trace_round_trips_through_loader(self, tmp_path):
        tracer = self._tracer()
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        events = load_trace_events(path)
        assert [e["name"] for e in events] == ["alloc.search", "sched.start"]
        assert events[0]["attrs"] == {"scheme": "ta"}
        assert events[0]["sim_time"] == 10.0
        assert events[1]["instant"] is True

    def test_jsonl_round_trips_through_loader(self, tmp_path):
        tracer = self._tracer()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        events = load_trace_events(path)
        assert events == tracer.events

    def test_write_accepts_file_objects(self):
        tracer = self._tracer()
        buf = io.StringIO()
        tracer.write_chrome_trace(buf)
        assert json.loads(buf.getvalue())["traceEvents"]
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        assert len(buf.getvalue().splitlines()) == 2

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_trace_events(path) == []


class TestSummarize:
    def test_rollup_counts_and_instants(self):
        tracer = Tracer(enabled=True)
        tracer.sim_time = 0.0
        for _ in range(3):
            with tracer.span("alloc.search"):
                pass
        tracer.sim_time = 500.0
        tracer.instant("sched.start")
        report = summarize_trace(tracer.events)
        assert "alloc.search" in report
        assert "      3" in report
        assert "sched.start" in report and "(instant events)" in report
        assert "0s .. 500s" in report

    def test_empty_trace(self):
        assert "(no spans)" in summarize_trace([])
