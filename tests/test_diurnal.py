"""Diurnal arrival modulation for Cab-like traces."""

import math

import numpy as np
import pytest

from repro.traces import cab_like
from repro.traces.llnl import _apply_diurnal_cycle, _diurnal_intensity


class TestIntensity:
    def test_day_cycle_peaks_afternoon(self):
        afternoon = _diurnal_intensity(15 * 3600.0)
        predawn = _diurnal_intensity(3 * 3600.0)
        assert afternoon > 1.3 * predawn

    def test_weekend_suppression(self):
        weekday_noon = _diurnal_intensity(1 * 86400.0 + 12 * 3600.0)
        weekend_noon = _diurnal_intensity(5 * 86400.0 + 12 * 3600.0)
        assert weekend_noon < weekday_noon

    def test_weekly_mean_near_one(self):
        ts = np.arange(0, 7 * 86400.0, 600.0)
        mean = float(np.mean([_diurnal_intensity(t) for t in ts]))
        assert 0.9 < mean < 1.1

    def test_always_positive(self):
        for t in np.arange(0, 7 * 86400.0, 3571.0):
            assert _diurnal_intensity(float(t)) > 0


class TestWarp:
    def test_monotone(self):
        arrivals = np.cumsum(np.full(200, 500.0))
        warped = _apply_diurnal_cycle(arrivals)
        assert (np.diff(warped) > 0).all()

    def test_low_intensity_stretches_gaps(self):
        # two arrivals an hour apart starting pre-dawn (intensity < 1)
        # take longer in wall-clock time than the homogeneous gap
        arrivals = np.array([3 * 3600.0, 4 * 3600.0])
        warped = _apply_diurnal_cycle(arrivals)
        assert warped[1] - warped[0] > 3600.0

    def test_total_span_comparable(self):
        arrivals = np.cumsum(np.full(500, 1000.0))
        warped = _apply_diurnal_cycle(arrivals)
        # intensity has weekly mean ~1, so total span stays within ~25 %
        assert 0.7 < warped[-1] / arrivals[-1] < 1.4


class TestTraceIntegration:
    def test_diurnal_trace_sorted_and_modulated(self):
        trace = cab_like("sep", num_jobs=2000, seed=0, diurnal=True)
        arr = np.array([j.arrival for j in trace.jobs])
        assert (np.diff(arr) >= 0).all()
        flat = cab_like("sep", num_jobs=2000, seed=0, diurnal=False)
        arr_flat = np.array([j.arrival for j in flat.jobs])
        # same jobs, different timing
        assert not np.allclose(arr, arr_flat)
        assert [j.size for j in trace.jobs] == [j.size for j in flat.jobs]

    def test_default_is_homogeneous(self):
        a = cab_like("aug", num_jobs=300, seed=1)
        b = cab_like("aug", num_jobs=300, seed=1, diurnal=False)
        assert [j.arrival for j in a.jobs] == [j.arrival for j in b.jobs]
