"""The formal-conditions validator against hand-built allocations.

Each illegal example mirrors a violation the paper illustrates: tapered
links (Figure 1 left), unbalanced node spread (Figure 1 center),
disconnected link choices (Figure 1 right), and the lemmas' remainder
rules.
"""

import pytest

from repro.core.allocator import Allocation
from repro.core.conditions import ConditionViolation, assert_valid, check_allocation
from repro.topology.fattree import FatTree, LinkId, SpineLinkId


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # m1=m2=4, m3=8, 128 nodes


def make_alloc(tree, nodes, leaf_links=(), spine_links=(), size=None):
    return Allocation(
        job_id=1,
        size=size if size is not None else len(nodes),
        nodes=tuple(nodes),
        leaf_links=tuple(leaf_links),
        spine_links=tuple(spine_links),
    )


class TestLegalAllocations:
    def test_single_leaf_job_needs_no_links(self, tree):
        alloc = make_alloc(tree, nodes=[0, 1, 2])
        assert check_allocation(tree, alloc) == []

    def test_two_leaves_common_l2(self, tree):
        # 2 nodes on each of two leaves, both using L2 indices {0, 1}
        alloc = make_alloc(
            tree,
            nodes=[0, 1, 4, 5],
            leaf_links=[LinkId(0, 0), LinkId(0, 1), LinkId(1, 0), LinkId(1, 1)],
        )
        assert check_allocation(tree, alloc) == []

    def test_remainder_leaf_subset(self, tree):
        # full leaves with nL=2 at S={0,1}; remainder leaf 1 node at Sr={1}
        alloc = make_alloc(
            tree,
            nodes=[0, 1, 4, 5, 8],
            leaf_links=[
                LinkId(0, 0), LinkId(0, 1),
                LinkId(1, 0), LinkId(1, 1),
                LinkId(2, 1),
            ],
        )
        assert check_allocation(tree, alloc) == []

    def test_figure3_style_three_level(self, tree):
        # Two full pods (pods 0,1) x 1 full leaf each (all 4 nodes), plus
        # remainder pod 2 with a remainder leaf of 2 nodes.
        m1 = tree.m1
        nodes = (
            list(tree.nodes_of_leaf(0))
            + list(tree.nodes_of_leaf(4))
            + list(tree.nodes_of_leaf(8))[:2]
        )
        leaf_links = (
            [LinkId(0, i) for i in range(m1)]
            + [LinkId(4, i) for i in range(m1)]
            + [LinkId(8, 0), LinkId(8, 1)]
        )
        spine_links = (
            [SpineLinkId(0, i, 0) for i in range(m1)]
            + [SpineLinkId(1, i, 0) for i in range(m1)]
            + [SpineLinkId(2, 0, 0), SpineLinkId(2, 1, 0)]
        )
        alloc = make_alloc(tree, nodes, leaf_links, spine_links)
        assert check_allocation(tree, alloc) == []
        assert_valid(tree, alloc)


class TestIllegalAllocations:
    def test_uneven_leaves_rejected(self, tree):
        # 3 + 1 + 2 nodes on three leaves: two "remainder" leaves (Lemma 1)
        alloc = make_alloc(tree, nodes=[0, 1, 2, 4, 8, 9])
        violations = check_allocation(tree, alloc)
        assert any("remainder leaf" in v for v in violations)

    def test_uneven_pods_rejected(self, tree):
        # pods with 8, 4 and 2 nodes: two remainder subtrees (Lemma 2)
        nodes = (
            list(tree.nodes_of_leaf(0)) + list(tree.nodes_of_leaf(1))
            + list(tree.nodes_of_leaf(4))
            + list(tree.nodes_of_leaf(8))[:2]
        )
        alloc = make_alloc(tree, nodes)
        violations = check_allocation(tree, alloc)
        assert any("remainder" in v for v in violations)

    def test_remainder_leaf_must_be_in_remainder_pod(self, tree):
        # pods 0 and 1: pod 0 has leaves (4, 2) nodes = remainder leaf in
        # the larger pod (violates Lemma 3)
        nodes = (
            list(tree.nodes_of_leaf(0))          # full leaf, pod 0
            + list(tree.nodes_of_leaf(1))[:2]     # partial leaf, pod 0
            + list(tree.nodes_of_leaf(4))         # full leaf, pod 1
        )
        alloc = make_alloc(tree, nodes)
        violations = check_allocation(tree, alloc, exact_nodes=False)
        assert violations

    def test_tapering_rejected(self, tree):
        # Figure 1 (left): 2 nodes per leaf but only one uplink each
        alloc = make_alloc(
            tree,
            nodes=[0, 1, 4, 5],
            leaf_links=[LinkId(0, 0), LinkId(1, 0)],
        )
        violations = check_allocation(tree, alloc)
        assert any("imbalance" in v for v in violations)

    def test_mismatched_l2_sets_rejected(self, tree):
        # Figure 1 (right): balanced counts but different L2 indices
        alloc = make_alloc(
            tree,
            nodes=[0, 1, 4, 5],
            leaf_links=[LinkId(0, 0), LinkId(0, 1), LinkId(1, 2), LinkId(1, 3)],
        )
        violations = check_allocation(tree, alloc)
        assert any("different L2 sets" in v for v in violations)

    def test_remainder_leaf_not_subset_rejected(self, tree):
        alloc = make_alloc(
            tree,
            nodes=[0, 1, 4, 5, 8],
            leaf_links=[
                LinkId(0, 0), LinkId(0, 1),
                LinkId(1, 0), LinkId(1, 1),
                LinkId(2, 3),  # Sr not within S
            ],
        )
        violations = check_allocation(tree, alloc)
        assert any("subset" in v for v in violations)

    def test_single_leaf_with_links_rejected(self, tree):
        alloc = make_alloc(tree, nodes=[0, 1], leaf_links=[LinkId(0, 0)])
        violations = check_allocation(tree, alloc)
        assert any("single-leaf" in v for v in violations)

    def test_single_pod_with_spine_links_rejected(self, tree):
        alloc = make_alloc(
            tree,
            nodes=[0, 1, 4, 5],
            leaf_links=[LinkId(0, 0), LinkId(0, 1), LinkId(1, 0), LinkId(1, 1)],
            spine_links=[SpineLinkId(0, 0, 0)],
        )
        violations = check_allocation(tree, alloc)
        assert any("spine" in v for v in violations)

    def test_cross_pod_without_spines_rejected(self, tree):
        nodes = list(tree.nodes_of_leaf(0)) + list(tree.nodes_of_leaf(4))
        leaf_links = [LinkId(0, i) for i in range(4)] + [
            LinkId(4, i) for i in range(4)
        ]
        alloc = make_alloc(tree, nodes, leaf_links)
        violations = check_allocation(tree, alloc)
        assert any("imbalance" in v for v in violations)

    def test_spine_sets_must_match_across_pods(self, tree):
        nodes = list(tree.nodes_of_leaf(0)) + list(tree.nodes_of_leaf(4))
        leaf_links = [LinkId(0, i) for i in range(4)] + [
            LinkId(4, i) for i in range(4)
        ]
        spine_links = [SpineLinkId(0, i, 0) for i in range(4)] + [
            SpineLinkId(1, i, 1) for i in range(4)  # different spine index
        ]
        alloc = make_alloc(tree, nodes, leaf_links, spine_links)
        violations = check_allocation(tree, alloc)
        assert any("spine" in v for v in violations)

    def test_duplicate_nodes_rejected(self, tree):
        alloc = Allocation(job_id=1, size=2, nodes=(0, 0))
        assert check_allocation(tree, alloc) == ["duplicate nodes"]

    def test_exact_nodes_condition(self, tree):
        # LaaS-style padding: 3 requested, 4 assigned
        alloc = Allocation(job_id=1, size=3, nodes=(0, 1, 2, 3))
        assert any("N != Nr" in v for v in check_allocation(tree, alloc))
        assert check_allocation(tree, alloc, exact_nodes=False) == []

    def test_assert_valid_raises_with_details(self, tree):
        alloc = make_alloc(tree, nodes=[0, 1], leaf_links=[LinkId(0, 0)])
        with pytest.raises(ConditionViolation, match="single-leaf"):
            assert_valid(tree, alloc)
