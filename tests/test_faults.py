"""Fault injection: allocators schedule around degraded hardware."""

import random

import pytest

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.topology.fattree import FatTree, LinkId, SpineLinkId
from repro.topology.faults import FaultInjector


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


class TestBasicFaults:
    def test_failed_node_never_allocated(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        injector.fail_node(5)
        for jid in range(1, 40):
            alloc = allocator.allocate(jid, 4)
            if alloc is None:
                break
            assert 5 not in alloc.nodes

    def test_failed_link_avoided(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        injector.fail_leaf_link(LinkId(0, 0))
        alloc = allocator.allocate(1, 8)  # wants 2 full leaves
        assert LinkId(0, 0) not in alloc.leaf_links
        assert check_allocation(tree, alloc) == []

    def test_failed_leaf_switch_blocks_its_nodes(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        injector.fail_leaf_switch(3)
        total = 0
        for jid in range(1, 100):
            alloc = allocator.allocate(jid, 4)
            if alloc is None:
                break
            assert not set(alloc.nodes) & set(tree.nodes_of_leaf(3))
            total += 4
        assert total == tree.num_nodes - tree.m1

    def test_failed_l2_switch_shrinks_common_sets(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        injector.fail_l2_switch(0, 2)
        alloc = allocator.allocate(1, 8)  # in pod 0 if placed there
        for leaf, i in alloc.leaf_links:
            if tree.pod_of_leaf(leaf) == 0:
                assert i != 2
        assert check_allocation(tree, alloc) == []

    def test_failed_spine_blocks_cross_pod_links(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        injector.fail_spine(0, 1)
        alloc = allocator.allocate(1, 20)  # three-level: uses spines
        for pod, i, j in alloc.spine_links:
            assert (i, j) != (0, 1)
        assert check_allocation(tree, alloc) == []

    def test_cannot_fail_owned_resource(self, tree):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, 4)
        injector = FaultInjector(allocator)
        with pytest.raises(Exception):
            injector.fail_node(alloc.nodes[0])


class TestRepair:
    def test_repair_restores_capacity(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        ticket = injector.fail_leaf_switch(0)
        assert allocator.free_nodes == tree.num_nodes - tree.m1
        injector.repair(ticket)
        assert allocator.free_nodes == tree.num_nodes
        allocator.state.audit()

    def test_double_repair_rejected(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        ticket = injector.fail_node(0)
        injector.repair(ticket)
        with pytest.raises(ValueError):
            injector.repair(ticket)

    def test_repair_all(self, tree):
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        injector.fail_node(0)
        injector.fail_spine(1, 1)
        injector.fail_leaf_link(LinkId(5, 2))
        assert injector.repair_all() == 3
        assert allocator.state.is_idle()
        assert injector.active_faults == []


class TestWithLinkSharing:
    def test_lcs_bandwidth_blocked_by_fault(self, tree):
        allocator = make_allocator("lc+s", tree)
        injector = FaultInjector(allocator)
        injector.fail_leaf_link(LinkId(0, 0))
        # the capacity state shows no headroom on the failed link
        assert not allocator.links.leaf_mask(0, 0.5) & 1
        ticket = injector.active_faults[0]
        injector.repair(ticket)
        assert allocator.links.leaf_mask(0, 0.5) & 1


class TestInjectorBugfixes:
    """Regression tests for the three FaultInjector correctness fixes."""

    def test_failed_inject_rolls_back_ownership_claim(self, tree):
        # An LC+S job carries fractional traffic on its leaf links, so
        # failing one must be rejected — and the rejection must not
        # leak the ownership claim made before the bandwidth claim.
        allocator = make_allocator("lc+s", tree)
        alloc = allocator.allocate(1, 2 * tree.m1)  # spans >= 2 leaves
        assert alloc is not None and alloc.leaf_links
        injector = FaultInjector(allocator)
        link = alloc.leaf_links[0]
        with pytest.raises(Exception) as exc:
            injector.fail_leaf_link(link)
        assert "drain" in str(exc.value)
        assert injector.active_faults == []
        allocator.state.audit()
        # The definitive no-leak check: once the job drains, the same
        # link is failable.  A leaked ownership claim would block it.
        allocator.release(1)
        ticket = injector.fail_leaf_link(link)
        assert ticket.bw_claimed
        injector.repair(ticket)
        assert allocator.state.is_idle()

    def test_inject_invalidates_feasibility_cache(self, tree):
        # Link-only faults change no node count, so the free-node
        # watermark cannot catch them; injection must flush explicitly.
        allocator = make_allocator("jigsaw", tree)
        assert allocator.allocate(1, 4) is not None
        assert not allocator.can_allocate(tree.num_nodes)
        assert allocator.feasibility_cache_size == 1
        injector = FaultInjector(allocator)
        injector.fail_spine_link(SpineLinkId(0, 0, 0))
        assert allocator.feasibility_cache_size == 0
        misses = allocator.stats.cache_misses
        assert not allocator.can_allocate(tree.num_nodes)
        assert allocator.stats.cache_misses == misses + 1  # re-derived

    def test_repair_idempotent_after_partial_release(self, tree):
        # Simulate a half-completed repair: the bandwidth claim is
        # already gone.  Repair must still finish (tolerant releases,
        # ticket deleted last) instead of sticking half-repaired.
        allocator = make_allocator("lc+s", tree)
        injector = FaultInjector(allocator)
        ticket = injector.fail_leaf_link(LinkId(0, 0))
        assert ticket.bw_claimed
        allocator.links.release(ticket.fault_id)
        injector.repair(ticket)  # must not raise
        assert injector.active_faults == []
        assert allocator.links.leaf_mask(0, 0.5) & 1
        assert allocator.state.is_idle()
        allocator.state.audit()


class TestDegradedOperation:
    def test_conditions_hold_under_random_faults(self, tree):
        rng = random.Random(4)
        allocator = make_allocator("jigsaw", tree)
        injector = FaultInjector(allocator)
        for _ in range(5):
            injector.fail_node(rng.randrange(tree.num_nodes // 2) * 2 + 1)
        injector.fail_spine(2, 0)
        injector.fail_l2_switch(3, 1)
        placed = 0
        for jid in range(1, 200):
            size = rng.choice([2, 3, 5, 8, 13, 20])
            alloc = allocator.allocate(jid, size)
            if alloc is None:
                continue
            placed += 1
            assert check_allocation(tree, alloc) == []
        allocator.state.audit()
        assert placed > 10
