"""Metric registry: instrument semantics and export formats."""

import math

import pytest

from repro.obs.metrics import MetricRegistry


@pytest.fixture
def reg():
    return MetricRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("hits_total", "hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counters_never_decrease(self, reg):
        c = reg.counter("hits_total", "hits")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_independent(self, reg):
        c = reg.counter("starts_total", "starts", labelnames=("via",))
        c.labels(via="fifo").inc(2)
        c.labels(via="backfill").inc(5)
        snap = reg.snapshot()
        assert snap['starts_total{via="fifo"}'] == 2
        assert snap['starts_total{via="backfill"}'] == 5

    def test_unlabeled_access_on_labeled_family_rejected(self, reg):
        c = reg.counter("starts_total", "starts", labelnames=("via",))
        with pytest.raises(ValueError):
            c.inc()

    def test_wrong_label_names_rejected(self, reg):
        c = reg.counter("starts_total", "starts", labelnames=("via",))
        with pytest.raises(ValueError):
            c.labels(kind="fifo")


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth", "queue depth")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12


class TestHistogram:
    def test_buckets_are_cumulative(self, reg):
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap['lat_bucket{le="0.1"}'] == 1
        assert snap['lat_bucket{le="1"}'] == 2
        assert snap['lat_bucket{le="10"}'] == 3
        assert snap['lat_bucket{le="+Inf"}'] == 3
        assert snap["lat_count"] == 3
        assert snap["lat_sum"] == pytest.approx(5.55)

    def test_overflow_lands_only_in_inf(self, reg):
        h = reg.histogram("lat", "latency", buckets=(1.0,))
        h.observe(99.0)
        snap = reg.snapshot()
        assert snap['lat_bucket{le="1"}'] == 0
        assert snap['lat_bucket{le="+Inf"}'] == 1


class TestRegistry:
    def test_duplicate_name_rejected(self, reg):
        reg.counter("x_total", "x")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x again")

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("0bad", "starts with a digit")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "bad label", labelnames=("0via",))

    def test_contains_and_get(self, reg):
        c = reg.counter("x_total", "x")
        assert "x_total" in reg and reg.get("x_total") is c
        assert "y_total" not in reg

    def test_bound_series_reads_live_storage(self, reg):
        box = {"n": 1}
        reg.bind("box_total", "live box", lambda: box["n"])
        assert reg.snapshot()["box_total"] == 1
        box["n"] = 7
        assert reg.snapshot()["box_total"] == 7

    def test_bound_family_extends_by_label_value(self, reg):
        reg.bind("k_total", "k", lambda: 1, labels={"kind": "a"})
        reg.bind("k_total", "k", lambda: 2, labels={"kind": "b"})
        snap = reg.snapshot()
        assert snap['k_total{kind="a"}'] == 1
        assert snap['k_total{kind="b"}'] == 2

    def test_bound_duplicate_series_rejected(self, reg):
        reg.bind("k_total", "k", lambda: 1, labels={"kind": "a"})
        with pytest.raises(ValueError):
            reg.bind("k_total", "k", lambda: 2, labels={"kind": "a"})

    def test_bound_cannot_shadow_owned(self, reg):
        reg.counter("x_total", "x")
        with pytest.raises(ValueError):
            reg.bind("x_total", "x", lambda: 1)


class TestPrometheusText:
    def test_format(self, reg):
        c = reg.counter("repro_starts_total", "job starts", ("via",))
        c.labels(via="fifo").inc(3)
        g = reg.gauge("repro_depth", "queue depth")
        g.set(1.5)
        text = reg.export_prometheus_text()
        lines = text.splitlines()
        assert "# HELP repro_depth queue depth" in lines
        assert "# TYPE repro_depth gauge" in lines
        assert "repro_depth 1.5" in lines
        assert "# TYPE repro_starts_total counter" in lines
        assert 'repro_starts_total{via="fifo"} 3' in lines
        assert text.endswith("\n")

    def test_integers_render_without_decimal_point(self, reg):
        reg.counter("n_total", "n").inc(42)
        assert "n_total 42" in reg.export_prometheus_text().splitlines()

    def test_label_values_escaped(self, reg):
        c = reg.counter("x_total", "x", ("name",))
        c.labels(name='we"ird\\v').inc()
        assert 'x_total{name="we\\"ird\\\\v"} 1' in (
            reg.export_prometheus_text()
        )

    def test_passes_schema_checker(self, reg, tmp_path):
        import pathlib
        import sys

        sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
        try:
            import _check_obs_schema as checker
        finally:
            sys.path.pop(0)
        h = reg.histogram("repro_lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        reg.counter("repro_hits_total", "hits").inc(2)
        path = tmp_path / "m.prom"
        path.write_text(reg.export_prometheus_text())
        assert checker.check_metrics(str(path)) == []


class TestPrometheusEdgeCases:
    """Exposition-format corners: escaping, degenerate registries,
    non-finite values, and bucket monotonicity under odd inputs."""

    def test_newline_in_label_value_escaped(self, reg):
        c = reg.counter("x_total", "x", ("name",))
        c.labels(name="two\nlines").inc()
        text = reg.export_prometheus_text()
        assert 'x_total{name="two\\nlines"} 1' in text.splitlines()

    def test_backslash_quote_newline_combined(self, reg):
        c = reg.counter("x_total", "x", ("name",))
        c.labels(name='a\\b"c\nd').inc()
        # Escape order matters: backslash first, so the escapes
        # themselves are not re-escaped.
        assert 'x_total{name="a\\\\b\\"c\\nd"} 1' in (
            reg.export_prometheus_text().splitlines()
        )

    def test_empty_registry_exports_no_samples(self, reg):
        text = reg.export_prometheus_text()
        assert text == "\n"
        assert reg.snapshot() == {}

    def test_nan_and_inf_gauges_render_spec_spellings(self, reg):
        reg.gauge("g_nan", "nan").set(float("nan"))
        reg.gauge("g_pinf", "+inf").set(float("inf"))
        reg.gauge("g_ninf", "-inf").set(float("-inf"))
        lines = reg.export_prometheus_text().splitlines()
        assert "g_nan NaN" in lines
        assert "g_pinf +Inf" in lines
        assert "g_ninf -Inf" in lines

    def test_histogram_buckets_monotone_with_boundary_hits(self, reg):
        # Observations exactly on bucket edges land in their own le
        # bucket (le is inclusive) and the cumulative counts never dip.
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.1, 1.0, 10.0, 10.0001):
            h.observe(v)
        snap = reg.snapshot()
        series = [snap['lat_bucket{le="0.1"}'], snap['lat_bucket{le="1"}'],
                  snap['lat_bucket{le="10"}'], snap['lat_bucket{le="+Inf"}']]
        assert series == sorted(series)
        assert series[-1] == snap["lat_count"] == 4

    def test_edge_cases_pass_schema_checker(self, reg, tmp_path):
        import pathlib
        import sys

        sys.path.insert(
            0, str(pathlib.Path(__file__).parent.parent / "benchmarks")
        )
        try:
            import _check_obs_schema as checker
        finally:
            sys.path.pop(0)
        c = reg.counter("repro_weird_total", "weird labels", ("name",))
        c.labels(name='a\\b"c\nd').inc()
        reg.gauge("repro_g", "non-finite").set(float("inf"))
        h = reg.histogram("repro_lat", "latency", buckets=(0.5,))
        h.observe(0.5)
        path = tmp_path / "edge.prom"
        path.write_text(reg.export_prometheus_text())
        assert checker.check_metrics(str(path)) == []
