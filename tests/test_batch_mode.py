"""Batch-step scheduling rounds and the array event core."""

import math

import pytest

from repro.core.baseline import BaselineAllocator
from repro.obs.sampler import ROW_FIELDS, TimeSeriesSampler
from repro.obs.tracer import Tracer
from repro.sched.eventcore import (
    ArrayEventQueue,
    CompletionQueue,
    EventStreams,
    JobTable,
    round_boundary,
)
from repro.sched.job import Job
from repro.sched.metrics import fidelity_report
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


def _trace(n=200, burst=False):
    return [
        Job(
            id=i + 1,
            size=(i * 7) % 40 + 1,
            runtime=400.0 + (i * 31) % 700,
            arrival=0.0 if burst else i * 5.0,
        )
        for i in range(n)
    ]


def _run(jobs, **kwargs):
    tree = FatTree.from_radix(8)
    return Simulator(BaselineAllocator(tree), **kwargs).run(jobs)


# ----------------------------------------------------------------------
# eventcore units
# ----------------------------------------------------------------------
class TestArrayEventQueue:
    def test_stable_order_and_cursor(self):
        q = ArrayEventQueue([5.0, 1.0, 5.0, 3.0], [0, 1, 2, 3])
        assert q.peek_time() == 1.0
        times, payloads = q.take_until(5.0)
        assert list(times) == [1.0, 3.0, 5.0, 5.0]
        # equal times keep payload (push) order — the heap's tie-break
        assert list(payloads) == [1, 3, 0, 2]
        assert len(q) == 0
        assert q.peek_time() == math.inf

    def test_take_until_partial(self):
        q = ArrayEventQueue([1.0, 2.0, 3.0], [0, 1, 2])
        times, _ = q.take_until(2.0)
        assert list(times) == [1.0, 2.0]
        assert q.peek_time() == 3.0


class TestCompletionQueue:
    def test_round_bucketing_preserves_push_order(self):
        q = CompletionQueue()
        a, b, c = object(), object(), object()
        sa = q.push(10.0, a)
        sb = q.push(5.0, b)
        sc = q.push(10.0, c)
        assert q.peek_time() == 5.0
        times, slots = q.take_until(10.0)
        assert list(times) == [5.0, 10.0, 10.0]
        assert [q.job(s) for s in slots] == [b, a, c]
        assert (sa, sb, sc) == (0, 1, 2)
        assert len(q) == 0

    def test_interleaved_push_and_drain(self):
        q = CompletionQueue()
        q.push(1.0, "x")
        q.take_until(1.0)
        q.push(3.0, "y")
        q.push(2.0, "z")
        times, slots = q.take_until(5.0)
        assert [q.job(s) for s in slots] == ["z", "y"]
        assert list(times) == [2.0, 3.0]


class TestEventStreamsMerge:
    def test_global_order_repair_completion_arrival_inject(self):
        arrivals = ArrayEventQueue([10.0], [0])
        completions = CompletionQueue()
        completions.push(10.0, "done")
        repairs = ArrayEventQueue([10.0], [0])
        injects = ArrayEventQueue([10.0], [1])
        streams = EventStreams(arrivals, completions, repairs, injects)
        _, kinds, _ = streams.take_round(10.0)
        assert list(kinds) == [-1, 0, 1, 2]
        assert streams.empty()


class TestJobTable:
    def test_columns_and_first_oversized(self):
        jobs = [Job(id=1, size=4, runtime=1.0),
                Job(id=2, size=9, runtime=2.0, arrival=5.0)]
        table = JobTable(jobs)
        assert list(table.sizes) == [4, 9]
        assert table.first_arrival == 0.0
        assert table.first_oversized(lambda s: s, capacity=10) is None
        assert table.first_oversized(lambda s: s, capacity=8) is jobs[1]
        # effective sizes count, not requested ones
        assert table.first_oversized(lambda s: s * 3, capacity=10) is jobs[0]


class TestRoundBoundary:
    def test_grid_alignment(self):
        assert round_boundary(0.0, 0.0, 300.0) == 0.0
        assert round_boundary(0.0, 1.0, 300.0) == 300.0
        assert round_boundary(0.0, 300.0, 300.0) == 300.0
        assert round_boundary(0.0, 300.1, 300.0) == 600.0
        assert round_boundary(100.0, 150.0, 300.0) == 400.0

    def test_boundary_never_below_event(self):
        t = round_boundary(0.0, 12345.678, 0.1)
        assert t >= 12345.678


# ----------------------------------------------------------------------
# batch-step policy
# ----------------------------------------------------------------------
class TestBatchStepMode:
    def test_rejects_non_positive_interval(self):
        tree = FatTree.from_radix(4)
        with pytest.raises(ValueError, match="step_interval"):
            Simulator(BaselineAllocator(tree), step_interval=0.0)
        with pytest.raises(ValueError, match="step_interval"):
            Simulator(BaselineAllocator(tree), step_interval=-1.0)

    def test_starts_only_on_round_grid(self):
        jobs = _trace()
        result = _run(jobs, step_interval=300.0)
        t0 = min(j.arrival for j in jobs)
        for r in result.jobs:
            k = (r.start - t0) / 300.0
            assert abs(k - round(k)) < 1e-9, r

    def test_all_jobs_complete(self):
        result = _run(_trace(), step_interval=300.0)
        assert len(result.jobs) == 200
        assert not result.unscheduled
        assert result.step_interval == 300.0

    def test_fewer_rounds_than_event_mode_on_burst(self):
        event = _run(_trace(burst=True))
        batch = _run(_trace(burst=True), step_interval=300.0)
        assert batch.scheduling_rounds < event.scheduling_rounds * 0.6
        assert event.step_interval is None

    def test_deterministic(self):
        a = _run(_trace(), step_interval=300.0)
        b = _run(_trace(), step_interval=300.0)
        assert [(r.job_id, r.start, r.end) for r in a.jobs] == [
            (r.job_id, r.start, r.end) for r in b.jobs
        ]

    def test_mid_interval_arrival_waits_for_next_boundary(self):
        # The grid anchors at the first arrival.  A second tiny job
        # arriving mid-interval on an idle cluster must wait for the
        # next boundary — lag bounded by the step.
        jobs = [
            Job(id=1, size=1, runtime=50.0, arrival=0.0),
            Job(id=2, size=1, runtime=50.0, arrival=130.0),
        ]
        result = _run(jobs, step_interval=300.0)
        recs = {r.job_id: r for r in result.jobs}
        assert recs[1].start == pytest.approx(0.0)
        assert recs[2].start == pytest.approx(300.0)
        assert 0.0 <= recs[2].start - recs[2].arrival <= 300.0

    def test_event_mode_unaffected_by_flag_default(self):
        a = _run(_trace())
        b = _run(_trace(), step_interval=None)
        assert [(r.job_id, r.start, r.end) for r in a.jobs] == [
            (r.job_id, r.start, r.end) for r in b.jobs
        ]


class TestBatchTelemetry:
    def test_step_lag_column_and_round_spans(self):
        sampler = TimeSeriesSampler(250.0)
        tracer = Tracer(enabled=True)
        tree = FatTree.from_radix(8)
        result = Simulator(
            BaselineAllocator(tree), step_interval=300.0,
            sampler=sampler, tracer=tracer,
        ).run(_trace())
        assert "step_lag" in ROW_FIELDS
        assert result.samples
        for row in result.samples:
            assert set(ROW_FIELDS) <= set(row)
            # lag since the last pass; it may exceed dt across idle gaps
            assert row["step_lag"] >= 0.0
        assert any(row["step_lag"] > 0.0 for row in result.samples)
        rounds = [e for e in tracer.events if e.get("name") == "sched.round"]
        assert len(rounds) == result.scheduling_rounds
        passes = [e for e in tracer.events if e.get("name") == "sched.pass"]
        assert len(passes) == result.scheduling_rounds

    def test_event_mode_emits_no_round_spans(self):
        tracer = Tracer(enabled=True)
        tree = FatTree.from_radix(8)
        Simulator(BaselineAllocator(tree), tracer=tracer).run(_trace(50))
        assert not [
            e for e in tracer.events if e.get("name") == "sched.round"
        ]


class TestFidelityReport:
    def test_deltas_and_ratios(self):
        event = _run(_trace())
        batch = _run(_trace(), step_interval=300.0)
        report = fidelity_report(event, batch)
        assert set(report) == {
            "util_delta_pp", "turnaround_delta_pct", "wait_delta_s",
            "makespan_delta_pct", "rounds_ratio", "attempts_ratio",
        }
        # batch can only delay starts relative to event-driven replay
        assert report["wait_delta_s"] >= 0.0
        assert 0.0 < report["rounds_ratio"] <= 1.0

    def test_rejects_mismatched_pairs(self):
        event = _run(_trace())
        event.scheme = "other"
        batch = _run(_trace(), step_interval=300.0)
        with pytest.raises(ValueError, match="one \\(trace, scheme\\)"):
            fidelity_report(event, batch)


class TestBatchWithFaults:
    def test_faulted_batch_run_completes(self):
        from repro.sched.resilience import FaultTimeline

        tree = FatTree.from_radix(8)
        timeline = FaultTimeline.synthetic(
            tree.num_nodes, mttf=20_000.0, mttr=1_000.0,
            horizon=30_000.0, seed=3,
        )
        result = Simulator(
            BaselineAllocator(tree), step_interval=300.0,
            fault_timeline=timeline,
            fault_victim_policy="requeue-remaining",
            checkpoint_interval=600.0,
        ).run(_trace())
        assert result.faults_injected > 0
        assert len(result.jobs) == 200
        assert not result.unscheduled
