"""LaaS: two-level fidelity, whole-leaf three-level rounding."""

import pytest

from repro.core.conditions import check_allocation
from repro.core.laas import LaaSAllocator
from repro.core.shapes import ThreeLevelShape, TwoLevelShape
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # m1=4


@pytest.fixture
def alloc(tree):
    return LaaSAllocator(tree)


class TestTwoLevelSameAsJigsaw:
    def test_sub_leaf_job_not_rounded(self, tree, alloc):
        a = alloc.allocate(1, 3)
        assert len(a.nodes) == 3
        assert a.padding == 0

    def test_in_pod_job_exact(self, tree, alloc):
        a = alloc.allocate(1, 11)
        assert len(a.nodes) == 11
        assert isinstance(a.shape, TwoLevelShape)
        assert check_allocation(tree, a) == []


class TestThreeLevelRounding:
    def test_figure2_left_rounding(self, tree, alloc):
        """Figure 2 (left): an 11-node job forced out of a single pod is
        rounded to whole leaves — one node is wasted."""
        # fill every pod so no single pod can host 11 nodes
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                alloc.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        a = alloc.allocate(1, 11)
        assert a is not None
        assert isinstance(a.shape, ThreeLevelShape)
        assert len(a.nodes) == 12  # rounded up to 3 whole leaves
        assert a.padding == 1
        assert check_allocation(tree, a, exact_nodes=False) == []
        # the padding node really is unusable by others
        assert alloc.state.node_owner[list(a.nodes)[-1]] == 1

    def test_three_level_uses_whole_leaves_only(self, tree, alloc):
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                alloc.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        a = alloc.allocate(1, 13)
        counts = a.leaf_node_counts(tree)
        assert all(c == tree.m1 for c in counts.values())

    def test_effective_size(self, tree, alloc):
        # jobs that can never fit one pod are rounded in the estimate
        assert alloc.effective_size(tree.nodes_per_pod + 1) == 5 * tree.m1
        # smaller jobs are optimistically exact
        assert alloc.effective_size(3) == 3
        assert alloc.effective_size(tree.nodes_per_pod) == tree.nodes_per_pod

    def test_release_returns_padding_too(self, tree, alloc):
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                alloc.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        before = alloc.free_nodes
        alloc.allocate(1, 11)
        assert alloc.free_nodes == before - 12
        alloc.release(1)
        assert alloc.free_nodes == before

    def test_busy_requested_excludes_padding(self, tree, alloc):
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                alloc.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        alloc.allocate(1, 11)
        assert alloc.allocations[1].size == 11
        assert alloc.busy_requested_nodes == 11


class TestConditionCompliance:
    @pytest.mark.parametrize("size", [1, 4, 5, 11, 16, 17, 33, 64, 65, 100])
    def test_empty_machine_allocations_legal(self, tree, size):
        a = LaaSAllocator(tree)
        result = a.allocate(1, size)
        assert result is not None
        assert check_allocation(tree, result, exact_nodes=False) == []
        assert len(result.nodes) >= size
