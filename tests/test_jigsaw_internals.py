"""Surgical tests of Jigsaw's search internals on crafted states."""

import pytest

from repro.core.conditions import check_allocation
from repro.core.jigsaw import JigsawAllocator
from repro.core.shapes import ThreeLevelShape, TwoLevelShape
from repro.topology.fattree import FatTree, LinkId


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # m1=m2=4, m3=8


@pytest.fixture
def alloc(tree):
    return JigsawAllocator(tree)


def occupy(allocator, leaf, count, job_id, with_links=True):
    """Claim ``count`` nodes (and matching uplinks) on a leaf."""
    tree = allocator.tree
    nodes = list(tree.nodes_of_leaf(leaf))[:count]
    links = [LinkId(leaf, i) for i in range(count)] if with_links else []
    allocator.state.claim(job_id, nodes, links)


class TestTwoLevelSearch:
    def test_common_l2_intersection_constraint(self, tree, alloc):
        """Two leaves whose free uplink sets barely overlap can only host
        a job as large as the overlap."""
        # leaf 0: uplinks {0,1} taken -> free {2,3}; leaf 1: {2,3} taken
        occupy(alloc, 0, 2, 100)              # takes uplinks 0,1
        alloc.state.claim(
            101, list(tree.nodes_of_leaf(1))[:2],
            [LinkId(1, 2), LinkId(1, 3)],
        )
        # force the job onto leaves 0 and 1 by filling everything else
        for leaf in range(2, tree.num_leaves):
            occupy(alloc, leaf, tree.m1, 200 + leaf, with_links=False)
        # leaves 0,1 have 2 free nodes each, but no common free L2 index:
        # a 2x2 job cannot be placed ...
        assert alloc.allocate(1, 4) is None
        # ... though 2 nodes fit on a single leaf (no links needed)
        result = alloc.allocate(2, 2)
        assert result is not None
        assert len(result.leaf_node_counts(tree)) == 1

    def test_remainder_leaf_prefers_best_fit(self, tree, alloc):
        occupy(alloc, 0, 3, 100)  # leaf 0 has exactly 1 free node
        result = alloc.allocate(1, tree.m1 + 1)  # one full leaf + 1
        counts = result.leaf_node_counts(tree)
        assert counts.get(0) == 1  # the 1-free leaf serves as remainder

    def test_scored_strategy_prefers_exact_fit(self, tree, alloc):
        occupy(alloc, 0, 1, 100)  # leaf 0: 3 free
        occupy(alloc, 4, 2, 101)  # leaf 4 (pod 1): 2 free
        result = alloc.allocate(1, 2)
        # exact fit on leaf 4 beats breaking leaf 0 (residue 1) or a
        # fully-free leaf (residue 2, breaks a full leaf)
        assert set(result.nodes) == set(list(tree.nodes_of_leaf(4))[2:])


class TestThreeLevelSearch:
    def _leave_full_leaves(self, alloc, per_pod):
        """Occupy everything except ``per_pod[p]`` fully-free leaves."""
        tree = alloc.tree
        jid = 500
        for pod in range(tree.num_pods):
            keep = per_pod[pod] if pod < len(per_pod) else 0
            for k, leaf in enumerate(tree.leaves_of_pod(pod)):
                if k >= keep:
                    jid += 1
                    occupy(alloc, leaf, tree.m1, jid, with_links=False)

    def test_exact_multi_pod_shape(self, tree, alloc):
        # 2 full leaves in pods 0 and 1, nothing else
        self._leave_full_leaves(alloc, [2, 2])
        result = alloc.allocate(1, 16)  # = 2 pods x 2 leaves x 4 nodes
        assert result is not None
        shape = result.shape
        assert isinstance(shape, ThreeLevelShape)
        assert shape.T == 2 and shape.LT == 2 and shape.nrT == 0
        assert check_allocation(tree, result) == []

    def test_remainder_pod_with_partial_leaf(self, tree, alloc):
        # pods 0,1: 2 full leaves; pod 2: 1 full leaf; and a 2-free leaf
        self._leave_full_leaves(alloc, [2, 2, 2])
        occupy(alloc, tree.first_leaf_of_pod(2) + 1, 2, 900, with_links=True)
        # 2*8 (pods 0,1) + 4 + 2 (remainder pod 2: full leaf + 2-node rem)
        result = alloc.allocate(1, 22)
        assert result is not None
        assert check_allocation(tree, result) == []
        shape = result.shape
        assert shape.nrL == 2 and shape.LrT == 1

    def test_spine_contention_blocks(self, tree, alloc):
        """A pod whose spine links are consumed cannot join a
        three-level allocation even with free leaves."""
        from repro.topology.fattree import SpineLinkId

        self._leave_full_leaves(alloc, [1, 1])
        # consume every spine link of pod 1
        spine_links = [
            SpineLinkId(1, i, j)
            for i in range(tree.l2_per_pod)
            for j in range(tree.spines_per_group)
        ]
        alloc.state.claim(901, [], spine_links=spine_links)
        assert alloc.allocate(1, 8) is None  # needs 2 pods' spines

    def test_lone_remainder_leaf_pod(self, tree, alloc):
        """T=1 full pod + a remainder pod holding only a partial leaf."""
        self._leave_full_leaves(alloc, [4, 1])
        # 4 leaves of pod 0 (16) + 2 nodes on a pod-1 leaf = 18
        # two-level is impossible: pod 0 alone holds only 16
        result = alloc.allocate(1, 18)
        assert result is not None
        shape = result.shape
        assert isinstance(shape, ThreeLevelShape)
        assert check_allocation(tree, result) == []

    def test_remainder_leaf_spared_when_needed_as_full(self, tree, alloc):
        """If the remainder pod has exactly LrT fully-free leaves, the
        remainder leaf must come from partial capacity, not consume one."""
        self._leave_full_leaves(alloc, [2, 2, 1])
        # pod 2 has 1 fully-free leaf; job wants 2*8 + (4 + 2):
        # LrT=1 needs that full leaf, nrL=2 must use a partial leaf -> none
        assert alloc.allocate(1, 22) is None
        # give pod 2 a partial leaf with 2 free nodes: now it works
        leaf = tree.first_leaf_of_pod(2) + 1
        nodes = list(tree.nodes_of_leaf(leaf))[:2]
        alloc.state.release(alloc.state.node_owner[nodes[0]])
        result = alloc.allocate(1, 22)
        assert result is not None


class TestBudgetAndStats:
    def test_budget_restored_each_attempt(self, tree, alloc):
        alloc.step_budget = 10_000
        alloc.allocate(1, 20)
        first_left = alloc._steps_left
        alloc.allocate(2, 20)
        assert alloc._steps_left <= alloc.step_budget
        assert first_left <= alloc.step_budget

    def test_failure_counted(self, tree, alloc):
        alloc.allocate(1, tree.num_nodes)
        alloc.allocate(2, 1)
        assert alloc.stats.failures == 1
        assert alloc.stats.successes == 1
