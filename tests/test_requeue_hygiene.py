"""Queue hygiene for fault-requeued jobs, property-style.

A ``requeue-remaining`` victim can be killed repeatedly (overlapping
faults hit it every time it restarts).  After *every* kill the run's
bookkeeping must hold:

* ``work_frac`` is monotone non-increasing per job (checkpointed work
  never un-saves itself);
* the killed job holds exactly one live queue entry — never two (a
  stale out-of-order entry plus the requeued one would let backfill
  skip the live entry or offer a running job to the allocator twice);
* in priority mode ``pheap_stale`` equals the number of stale heap
  entries and ``started_out_of_order`` holds exactly their ids; in FIFO
  mode every tracked id has exactly one entry behind the head.

The checks are wrapped around ``_RunState.kill_job`` and evaluated on
seeded fault timelines across all four queue orders.
"""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.sched.job import Job
from repro.sched.resilience import FaultTimeline
from repro.sched.simulator import Simulator, _RunState
from repro.topology.fattree import FatTree

SEEDS = (1, 2)


def _jobs(n=120):
    return [
        Job(
            id=i + 1,
            size=(i * 13) % 48 + 1,
            runtime=1500.0 + (i * 97) % 1100,
            arrival=i * 25.0,
        )
        for i in range(n)
    ]


def _live_entries(state, job):
    """Live queue entries for ``job``: FIFO entries behind the head plus
    priority-heap entries, minus anything marked stale."""
    stale = job.id in state.started_out_of_order
    fifo = sum(1 for j in state.queue[state.head:] if j is job)
    heap = sum(1 for e in state.pheap if e[2] is job)
    return fifo + heap - (1 if stale and (fifo + heap) else 0)


def _check_structures(state):
    if state.priority_key is not None:
        stale_entries = [
            e for e in state.pheap
            if e[2].id in state.started_out_of_order
        ]
        assert state.pheap_stale == len(stale_entries)
        assert state.started_out_of_order == {
            e[2].id for e in stale_entries
        }
        # no job may hold two entries in the heap
        ids = [e[2].id for e in state.pheap]
        assert len(ids) == len(set(ids))
    else:
        behind = [j.id for j in state.queue[state.head:]]
        assert len(behind) == len(set(behind))
        for job_id in state.started_out_of_order:
            assert behind.count(job_id) == 1


@pytest.mark.parametrize("queue_order", Simulator.QUEUE_ORDERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_requeue_hygiene_under_overlapping_faults(
    monkeypatch, queue_order, seed
):
    tree = FatTree.from_radix(8)
    timeline = FaultTimeline.synthetic(
        tree.num_nodes, mttf=3000.0, mttr=300.0, horizon=20_000.0,
        seed=seed,
    )
    kills_per_job = {}
    frac_seen = {}

    orig_kill = _RunState.kill_job

    def checked_kill(self, job, now, **kw):
        orig_kill(self, job, now, **kw)
        kills_per_job[job.id] = kills_per_job.get(job.id, 0) + 1
        frac = self.work_frac.get(job.id, 1.0)
        assert frac <= frac_seen.get(job.id, 1.0) + 1e-12
        assert 0.0 <= frac <= 1.0
        frac_seen[job.id] = frac
        # the victim was purged and re-enqueued: exactly one live entry
        assert _live_entries(self, job) == 1
        assert job.id not in self.started_out_of_order
        assert job.id not in self.running
        assert job.id not in self.live_comp
        _check_structures(self)

    monkeypatch.setattr(_RunState, "kill_job", checked_kill)

    jobs = _jobs()
    sim = Simulator(
        BaselineAllocator(tree),
        queue_order=queue_order,
        fault_timeline=timeline,
        fault_victim_policy="requeue-remaining",
        checkpoint_interval=600.0,
    )
    result = sim.run(jobs)

    assert kills_per_job, "timeline never killed a job — scenario too tame"
    # The scenario must actually exercise repeat victims, or the
    # monotonicity/liveness checks above are vacuous.
    assert any(n >= 2 for n in kills_per_job.values()), (
        "no job was killed twice; strengthen the timeline"
    )
    # Every kill was resubmitted and (with repairs active) finished.
    assert result.resubmissions == sum(kills_per_job.values())
    assert len(result.jobs) == len(jobs)
    assert not result.unscheduled
