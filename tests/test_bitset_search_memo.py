"""Bitset shape search, cross-pass memoization and the hot-path fixes.

The PR's invariants, as regression and property tests:

* a leaf-uplink fault on an otherwise-free leaf must never crash the
  three-level claim (the search now requires *usable* full leaves:
  all nodes free AND all uplinks free);
* a durable-failure floor recorded while hardware was failed must not
  outlive the repair — the job must schedule after the repair;
* ``batch_screen`` is sound at its edges against the scalar search,
  and screen survivors claim/release cleanly under link faults;
* the cross-pass negative memo changes no placement and no budget
  trajectory: memo-on and memo-off runs produce identical job records,
  with ``backtrack_steps + xpass_memo_replayed_steps`` equal to the
  memo-off step count, across schemes, queue orders and fault
  timelines;
* the vectorized two-level scored search is decision-identical to the
  scalar walk it replaces.
"""

import os
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.experiments.runner import paper_setup, run_scheme
from repro.topology.fattree import FatTree, LinkId
from repro.topology.faults import FaultInjector

TREE8 = FatTree.from_radix(8)

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _records(result):
    return [
        (r.job_id, r.size, r.arrival, r.start, r.end) for r in result.jobs
    ]


# ----------------------------------------------------------------------
# Satellite 1: leaf-uplink faults vs the three-level full-leaf claim
# ----------------------------------------------------------------------
class TestUsableLeafFault:
    """A dead uplink on a fully-free leaf used to crash mid-claim:
    ``_build_three_level`` claims every uplink of every full leaf, but
    the search never checked them."""

    @pytest.mark.parametrize("scheme", ["jigsaw", "laas"])
    @pytest.mark.parametrize("indexed", [True, False])
    def test_fault_does_not_crash_three_level(self, scheme, indexed):
        tree = TREE8
        alloc = make_allocator(scheme, tree)
        alloc.use_indexes = indexed
        inj = FaultInjector(alloc)
        inj.fail_leaf_link(LinkId(0, 0))
        # Cross-pod job: on the old code pod 0 ranks first, leaf 0 is
        # "full" by node count, and the claim raises AllocationError.
        a = alloc.allocate(1, 2 * tree.nodes_per_pod)
        assert a is not None
        assert check_allocation(
            tree, a, exact_nodes=(scheme != "laas")
        ) == []
        assert all(link.leaf != 0 for link in a.leaf_links)
        alloc.state.audit()

    @pytest.mark.parametrize("scheme", ["jigsaw", "laas"])
    def test_floor_does_not_survive_repair(self, scheme):
        tree = TREE8
        alloc = make_allocator(scheme, tree)
        inj = FaultInjector(alloc)
        ticket = inj.fail_leaf_link(LinkId(0, 0))
        size = tree.num_nodes  # needs every leaf, including leaf 0
        # Fails cleanly (no AllocationError) and records the durable
        # failure in the floor/cache machinery.
        assert alloc.allocate(1, size) is None
        eff = alloc.effective_size(size)
        assert (eff, None) in alloc._failed_keys
        inj.repair(ticket)
        # The repaired link restores feasibility; a floor recorded under
        # the fault must not skip the now-feasible job.
        a = alloc.allocate(2, size)
        assert a is not None
        assert check_allocation(
            tree, a, exact_nodes=(scheme != "laas")
        ) == []
        alloc.release(2)
        alloc.state.audit()


# ----------------------------------------------------------------------
# Satellite 2: batch_screen soundness at the edges, with claim round-trip
# ----------------------------------------------------------------------
@common
@given(
    scheme=st.sampled_from(["jigsaw", "laas", "ta"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_batch_screen_sound_against_scalar_search(scheme, seed):
    rng = random.Random(seed)
    tree = TREE8
    alloc = make_allocator(scheme, tree)
    inj = FaultInjector(alloc)
    jid = 0
    live = []
    for _ in range(60):
        r = rng.random()
        if r < 0.55:
            a = alloc.allocate(jid, rng.randint(1, tree.num_nodes // 3))
            if a is not None:
                live.append(jid)
            jid += 1
        elif r < 0.75 and live:
            alloc.release(live.pop(rng.randrange(len(live))))
        else:
            kind = rng.choice(["node", "leaf-link"])
            try:
                if kind == "node":
                    node = rng.randrange(tree.num_nodes)
                    if int(alloc.state.node_owner[node]) != -1:
                        continue
                    inj.fail_node(node)
                else:
                    inj.fail_leaf_link(LinkId(
                        rng.randrange(tree.num_leaves),
                        rng.randrange(tree.l2_per_pod),
                    ))
            except Exception:
                continue
    # Edge sweep: the rem==0 / rem>0 crossover, sub-leaf sizes, pod
    # capacity and beyond.
    m1, npod = tree.m1, tree.nodes_per_pod
    sweep = sorted({
        1, 2, m1 - 1, m1, m1 + 1, 2 * m1, 2 * m1 + 1,
        npod - 1, npod, npod + 1, 2 * npod, tree.num_nodes,
    })
    effs = np.array([alloc.effective_size(s) for s in sweep], np.int64)
    screen = alloc.batch_screen(effs)
    assert screen is not None
    for i, size in enumerate(sweep):
        found = alloc._search(-1, size, None)
        if screen[i]:
            # Screened-out == provably infeasible: the scalar search
            # must agree.
            assert found is None, (scheme, seed, size)
        elif found is not None:
            # Screen survivor that the search placed: the claim must
            # round-trip even under the injected link faults.
            probe = alloc.allocate(jid, size)
            assert probe is not None, (scheme, seed, size)
            alloc.release(jid)
            jid += 1
    alloc.state.audit()


# ----------------------------------------------------------------------
# Cross-pass memo: decision and budget invariance
# ----------------------------------------------------------------------
SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")
QUEUE_ORDERS = ("fifo", "sjf", "smallest", "largest")


def _run_pair(scheme, **kwargs):
    """One run with the cross-pass memo and one without, same inputs."""
    results = []
    for disable in ("", "1"):
        os.environ["REPRO_NO_XPASS_MEMO"] = disable
        try:
            setup = paper_setup("Synth-16", scale=0.004)
            results.append(run_scheme(setup, scheme, **kwargs))
        finally:
            os.environ.pop("REPRO_NO_XPASS_MEMO", None)
    return results


def _assert_memo_invariant(on, off, context):
    assert _records(on) == _records(off), context
    assert on.unscheduled == off.unscheduled, context
    assert on.memo_hits == off.memo_hits, context
    assert off.xpass_memo_hits == 0, context
    assert off.xpass_memo_replayed_steps == 0, context
    # Replayed steps account for exactly the walk the memo skipped.
    assert (
        on.backtrack_steps + on.xpass_memo_replayed_steps
        == off.backtrack_steps
    ), context


@pytest.mark.parametrize("queue_order", QUEUE_ORDERS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_xpass_memo_invariant_across_queue_orders(scheme, queue_order):
    on, off = _run_pair(scheme, queue_order=queue_order)
    _assert_memo_invariant(on, off, (scheme, queue_order))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_xpass_memo_invariant_under_faults(scheme):
    kwargs = dict(
        mttf=20_000.0, fault_seed=1,
        fault_victim_policy="requeue-remaining",
        checkpoint_interval=600.0,
    )
    on, off = _run_pair(scheme, **kwargs)
    assert on.faults_injected == off.faults_injected > 0, scheme
    _assert_memo_invariant(on, off, (scheme, "faulted"))


# ----------------------------------------------------------------------
# Vectorized two-level scored search vs the scalar walk
# ----------------------------------------------------------------------
@common
@given(
    scheme=st.sampled_from(["jigsaw", "laas"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_vector_two_level_matches_scalar(scheme, seed):
    rng = random.Random(seed)
    tree = TREE8
    vec = make_allocator(scheme, tree)
    ref = make_allocator(scheme, tree)
    ref.vector_two_level = False
    assert vec.vector_two_level is True
    jid = 0
    live = []
    for _ in range(80):
        r = rng.random()
        if r < 0.6:
            size = rng.randint(1, tree.nodes_per_pod)
            a = vec.allocate(jid, size)
            b = ref.allocate(jid, size)
            assert (a is None) == (b is None), (scheme, seed, jid, size)
            if a is not None:
                assert sorted(a.nodes) == sorted(b.nodes), (scheme, seed)
                assert sorted(a.leaf_links) == sorted(b.leaf_links)
                live.append(jid)
            jid += 1
        elif live:
            victim = live.pop(rng.randrange(len(live)))
            vec.release(victim)
            ref.release(victim)
    vec.state.audit()
