"""Reservation policies on a crafted starvation scenario.

The scenario: a fragmentation-blocked large job whose node-count shadow
perpetually underestimates.  Under ``slip`` the shadow is recomputed at
every event and keeps sliding; ``renew`` bounds the slide; ``sticky``
holds the original reservation until the head starts.
"""

import pytest

from repro.core.jigsaw import JigsawAllocator
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # pod = 16, 128 nodes


def starvation_workload():
    """Small jobs churn forever; one big job needs fully-free leaves."""
    jobs = []
    jid = 0
    # a carpet of 3-node jobs that breaks every leaf
    for _ in range(40):
        jid += 1
        jobs.append(Job(id=jid, size=3, runtime=50.0))
    # the victim: needs 9 fully-free leaves
    jid += 1
    victim = Job(id=jid, size=34, runtime=100.0)
    jobs.append(victim)
    # a stream of short small jobs arriving steadily afterwards
    for k in range(120):
        jid += 1
        jobs.append(Job(id=jid, size=3, runtime=50.0, arrival=10.0 + k * 5.0))
    return jobs, victim.id


@pytest.mark.parametrize("policy", ["renew", "sticky", "slip"])
def test_victim_eventually_runs(tree, policy):
    jobs, victim_id = starvation_workload()
    sim = Simulator(JigsawAllocator(tree), reservation_policy=policy)
    result = sim.run(jobs)
    victim = next(r for r in result.jobs if r.job_id == victim_id)
    assert victim.end > victim.start >= 0


def test_sticky_never_later_than_slip_for_victim(tree):
    """Holding the reservation can only help the starved job."""
    jobs, victim_id = starvation_workload()
    starts = {}
    for policy in ("sticky", "slip"):
        sim = Simulator(JigsawAllocator(tree), reservation_policy=policy)
        result = sim.run(jobs)
        starts[policy] = next(
            r for r in result.jobs if r.job_id == victim_id
        ).start
    assert starts["sticky"] <= starts["slip"] + 1e-9
