"""The allocator's cross-pass feasibility cache.

A failed search is cached by (effective size, bw_need) and stays valid
until capacity grows: release(), or FaultInjector.repair().  These
tests pin the counter semantics, every invalidation path, the
non-durability of budget-limited (timed-out) failures, and — via a
random interleaving of allocate/release/fault/repair — that every
cached verdict always agrees with a fresh allocator replaying the same
live claims.
"""

import random

import pytest

from repro.core.baseline import BaselineAllocator
from repro.core.jigsaw import JigsawAllocator
from repro.core.lcs import LeastConstrainedAllocator
from repro.topology.fattree import FatTree
from repro.topology.faults import FaultInjector


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # 128 nodes


def fill(allocator, job_id=1000):
    """Claim the whole cluster with one job; returns the job id."""
    assert allocator.allocate(job_id, allocator.tree.num_nodes) is not None
    return job_id


class TestCounters:
    def test_repeated_failure_is_served_from_cache(self, tree):
        alloc = JigsawAllocator(tree)
        filler = fill(alloc)
        base_misses = alloc.stats.cache_misses
        assert alloc.allocate(1, 4) is None
        assert alloc.stats.cache_misses == base_misses + 1
        assert alloc.stats.cache_hits == 0
        assert alloc.feasibility_cache_size == 1
        # Same key again: no search, one hit, attempts still recorded.
        attempts = alloc.stats.attempts
        assert alloc.allocate(2, 4) is None
        assert alloc.stats.cache_hits == 1
        assert alloc.stats.cache_misses == base_misses + 1
        assert alloc.stats.attempts == attempts + 1
        assert alloc.feasibility_cache_keys() == ((4, None),)
        del filler

    def test_distinct_keys_cached_separately(self, tree):
        alloc = JigsawAllocator(tree)
        fill(alloc)
        assert alloc.allocate(1, 4) is None
        assert alloc.allocate(2, 5) is None
        assert alloc.feasibility_cache_size == 2
        assert alloc.stats.cache_hits == 0

    def test_success_is_never_cached(self, tree):
        alloc = JigsawAllocator(tree)
        assert alloc.allocate(1, 4) is not None
        assert alloc.feasibility_cache_size == 0
        assert alloc.stats.cache_misses == 1
        assert alloc.stats.cache_hits == 0

    def test_can_allocate_consults_and_populates(self, tree):
        alloc = JigsawAllocator(tree)
        fill(alloc)
        assert not alloc.can_allocate(4)
        assert alloc.feasibility_cache_size == 1
        assert not alloc.can_allocate(4)
        assert alloc.stats.cache_hits == 1
        # A probe's cached verdict also serves a real attempt.
        assert alloc.allocate(1, 4) is None
        assert alloc.stats.cache_hits == 2

    def test_hit_rate(self, tree):
        alloc = JigsawAllocator(tree)
        assert alloc.stats.cache_hit_rate == 0.0  # never consulted
        fill(alloc)
        alloc.allocate(1, 4)
        alloc.allocate(2, 4)
        rate = alloc.stats.cache_hit_rate
        assert 0.0 < rate < 1.0
        assert rate == alloc.stats.cache_hits / (
            alloc.stats.cache_hits + alloc.stats.cache_misses
        )


class TestInvalidation:
    def test_release_clears_cache(self, tree):
        alloc = JigsawAllocator(tree)
        filler = fill(alloc)
        assert alloc.allocate(1, 4) is None
        assert alloc.feasibility_cache_size == 1
        alloc.release(filler)
        assert alloc.feasibility_cache_size == 0
        assert alloc.stats.cache_invalidations == 1
        # The previously-infeasible size now succeeds (a stale cache
        # would have wrongly refused it).
        assert alloc.allocate(2, 4) is not None

    def test_release_with_empty_cache_counts_nothing(self, tree):
        alloc = JigsawAllocator(tree)
        assert alloc.allocate(1, 4) is not None
        alloc.release(1)
        assert alloc.stats.cache_invalidations == 0

    def test_fault_repair_invalidates(self, tree):
        alloc = JigsawAllocator(tree)
        injector = FaultInjector(alloc)
        ticket = injector.fail_node(0)
        # With one node down, a full-machine job is infeasible — and the
        # verdict is cached.
        assert alloc.allocate(1, tree.num_nodes) is None
        assert alloc.feasibility_cache_size == 1
        injector.repair(ticket)
        assert alloc.feasibility_cache_size == 0
        assert alloc.stats.cache_invalidations == 1
        assert alloc.allocate(2, tree.num_nodes) is not None

    def test_direct_state_release_is_caught_by_watermark(self, tree):
        # Tests and diagnostics sometimes return nodes by mutating
        # state directly; the free-node watermark must flush the cache
        # at the next consult so stale verdicts cannot refuse a job.
        alloc = JigsawAllocator(tree)
        filler = fill(alloc)
        assert alloc.allocate(1, 4) is None
        assert alloc.feasibility_cache_size == 1
        alloc.state.release(filler)  # bypasses Allocator.release
        del alloc.allocations[filler]
        assert alloc.allocate(2, 4) is not None

    def test_manual_invalidation_is_idempotent(self, tree):
        alloc = JigsawAllocator(tree)
        fill(alloc)
        alloc.allocate(1, 4)
        alloc.invalidate_feasibility_cache()
        alloc.invalidate_feasibility_cache()
        assert alloc.stats.cache_invalidations == 1


class TestDurability:
    def test_timed_out_failure_is_not_cached(self, tree):
        # A multi-leaf job (size 8 > m1=4 nodes per leaf) needs the
        # backtracking search, and step_budget=1 makes that search give
        # up immediately even though the job is feasible.  A timeout
        # proves nothing, so nothing may enter the cache.
        alloc = LeastConstrainedAllocator(tree, step_budget=1)
        assert alloc.allocate(1, 8) is None
        assert alloc.feasibility_cache_size == 0
        # ... and the next identical attempt runs the search again
        # (a miss, not a hit).
        assert alloc.allocate(2, 8) is None
        assert alloc.stats.cache_hits == 0
        assert alloc.stats.cache_misses == 2

    def test_exhaustive_failure_is_cached_under_budget(self, tree):
        # A generous budget lets the search fail *exhaustively*, which
        # is a durable proof even for the budget-limited scheme.
        alloc = LeastConstrainedAllocator(tree, step_budget=10_000_000)
        fill(alloc)
        assert alloc.allocate(1, 4, bw_need=1.0) is None
        assert alloc.feasibility_cache_size == 1
        assert alloc.allocate(2, 4, bw_need=1.0) is None
        assert alloc.stats.cache_hits == 1

    def test_bw_need_is_part_of_the_key(self, tree):
        alloc = LeastConstrainedAllocator(tree, step_budget=10_000_000)
        fill(alloc)
        assert alloc.allocate(1, 4, bw_need=1.0) is None
        assert alloc.allocate(2, 4, bw_need=2.0) is None
        assert alloc.feasibility_cache_size == 2


class TestStatefulInterleaving:
    """Random allocate/release/fault/repair against Jigsaw; after every
    step the derived-state audit must pass and every cached verdict must
    agree with a *fresh* allocator replaying the same live claims."""

    def _fresh_replica(self, tree, alloc, fault_claims):
        fresh = JigsawAllocator(tree)
        for a in alloc.allocations.values():
            fresh.state.claim(a.job_id, a.nodes, a.leaf_links, a.spine_links)
        for fault_id, node in fault_claims.items():
            fresh.state.claim(fault_id, [node])
        return fresh

    def _check(self, tree, alloc, fault_claims):
        alloc.state.audit()
        if not alloc._failed_keys:
            return
        fresh = self._fresh_replica(tree, alloc, fault_claims)
        for size, bw_need in alloc.feasibility_cache_keys():
            assert not fresh.can_allocate(size, bw_need), (
                f"cache says {size} nodes (bw {bw_need}) are infeasible "
                f"but a fresh search succeeds"
            )

    def test_interleaved_operations(self):
        tree = FatTree.from_radix(6)  # 54 nodes
        rng = random.Random(20210601)
        alloc = JigsawAllocator(tree)
        injector = FaultInjector(alloc)
        live = []
        fault_claims = {}  # fault_id -> node
        tickets = {}
        next_id = 0
        for _ in range(250):
            op = rng.random()
            if op < 0.45:
                next_id += 1
                size = rng.randint(1, tree.num_nodes)
                got = alloc.allocate(next_id, size)
                # The cache and a fresh exhaustive probe must agree on
                # the attempt we just made.
                fresh = self._fresh_replica(tree, alloc, fault_claims)
                if got is not None:
                    live.append(next_id)
                    fresh.state.release(next_id)  # probe pre-claim state
                    assert fresh.can_allocate(size)
                else:
                    assert not fresh.can_allocate(size)
            elif op < 0.75 and live:
                alloc.release(live.pop(rng.randrange(len(live))))
            elif op < 0.9:
                free = [n for n in range(tree.num_nodes)
                        if alloc.state.node_owner[n] == -1]
                if free:
                    node = rng.choice(free)
                    ticket = injector.fail_node(node)
                    tickets[ticket.fault_id] = ticket
                    fault_claims[ticket.fault_id] = node
            elif tickets:
                fault_id = rng.choice(list(tickets))
                injector.repair(tickets.pop(fault_id))
                del fault_claims[fault_id]
            self._check(tree, alloc, fault_claims)
        # The sequence must actually have exercised the cache.
        assert alloc.stats.cache_hits + alloc.stats.cache_misses > 0
        assert alloc.stats.cache_invalidations > 0

    def test_baseline_scheme_same_contract(self):
        # The cache lives in the base class; a quick sweep on the
        # contiguous-range baseline catches base-class regressions that
        # Jigsaw's richer search might mask.
        tree = FatTree.from_radix(6)
        rng = random.Random(7)
        alloc = BaselineAllocator(tree)
        live = []
        next_id = 0
        for _ in range(150):
            if rng.random() < 0.6 or not live:
                next_id += 1
                if alloc.allocate(next_id, rng.randint(1, 30)) is not None:
                    live.append(next_id)
            else:
                alloc.release(live.pop(rng.randrange(len(live))))
            alloc.state.audit()
            fresh = BaselineAllocator(tree)
            for a in alloc.allocations.values():
                fresh.state.claim(a.job_id, a.nodes,
                                  a.leaf_links, a.spine_links)
            for size, bw_need in alloc.feasibility_cache_keys():
                assert not fresh.can_allocate(size, bw_need)
