"""Twin-driver equivalence: the columnar event drain vs its scalar twin.

The columnar drain promises *identical decisions and metrics* — every
placement, every area accumulator bit, every histogram count — while
retiring allocations through one ``release_many`` per completion batch
and enqueuing arrivals as a bulk transition.  These tests run each
configuration through both drains and hold them to it, and property
tests audit ``release_many`` against sequential ``release`` over random
occupancy states (the full incremental-index state must match).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_allocator
from repro.sched.job import Job
from repro.sched.metrics import InstantHistogram
from repro.sched.resilience import FaultTimeline
from repro.sched.simulator import Simulator, _RunState
from repro.topology.fattree import FatTree, LinkId
from repro.topology.state import AllocationError, ClusterState

SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")
QUEUE_ORDERS = ("fifo", "sjf", "smallest", "largest")
STEP_MODES = (None, 300.0)  # event-driven and batch-step


def _jobs(n=250, seed=0):
    rng = random.Random(seed)
    jobs, arrival = [], 0.0
    for i in range(n):
        arrival += rng.expovariate(1 / 20)
        jobs.append(Job(
            id=i,
            size=rng.randint(1, 100),
            runtime=rng.uniform(10.0, 400.0),
            arrival=arrival,
        ))
    return jobs


def _run(scheme, use_columnar_events, **sim_kwargs):
    tree = FatTree.from_radix(8)
    sim = Simulator(
        make_allocator(scheme, tree),
        use_columnar_events=use_columnar_events,
        **sim_kwargs,
    )
    result = sim.run(_jobs(), "twin")
    return sim, result


def _assert_twin(scheme, **sim_kwargs):
    """Run both drains and assert identical decisions *and* metrics.

    Unlike the scheduling-pass twins, the event drains promise
    bit-identical area accumulators and histogram counts too — the
    per-event float-accumulation order is preserved by construction.
    """
    csim, col = _run(scheme, True, **sim_kwargs)
    ssim, sca = _run(scheme, False, **sim_kwargs)
    assert [(j.job_id, j.start, j.end) for j in col.jobs] == [
        (j.job_id, j.start, j.end) for j in sca.jobs
    ]
    assert col.makespan == sca.makespan
    assert col.busy_area == sca.busy_area
    assert col.demand_area == sca.demand_area
    assert col.total_busy_area == sca.total_busy_area
    assert col.instant.counts == sca.instant.counts
    assert col.alloc_attempts == sca.alloc_attempts
    assert col.unscheduled == sca.unscheduled
    assert col.resubmissions == sca.resubmissions
    assert col.wasted_node_seconds == sca.wasted_node_seconds
    assert col.degraded_node_seconds == sca.degraded_node_seconds
    assert csim.peak_queue_len == ssim.peak_queue_len
    assert csim.peak_started_out_of_order == ssim.peak_started_out_of_order
    return col, sca


@pytest.mark.parametrize("step_interval", STEP_MODES)
@pytest.mark.parametrize("queue_order", QUEUE_ORDERS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_easy_twin(scheme, queue_order, step_interval):
    _assert_twin(
        scheme, queue_order=queue_order, step_interval=step_interval
    )


@pytest.mark.parametrize("step_interval", STEP_MODES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_conservative_twin(scheme, step_interval):
    _assert_twin(
        scheme, backfill_policy="conservative", step_interval=step_interval
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_faulted_twin(scheme):
    timeline = FaultTimeline.synthetic(
        128, mttf=40_000.0, mttr=4_000.0, horizon=20_000.0, seed=1
    )
    col, _ = _assert_twin(
        scheme,
        fault_timeline=timeline,
        fault_victim_policy="requeue-remaining",
        checkpoint_interval=600.0,
    )
    assert col.faults_injected > 0  # the timeline actually fired


def test_columnar_drain_actually_taken(monkeypatch):
    """Batch-step rounds batch their completions — and the scalar
    knob, per-event telemetry, or the env variable all force the twin.
    (Event-driven rounds drain one timestamp at a time and so take the
    small-round scalar fallback; decisions are identical either way.)
    """
    calls = {"batch": 0}
    orig = _RunState.complete_batch

    def counting(self, times, slots):
        calls["batch"] += 1
        return orig(self, times, slots)

    monkeypatch.setattr(_RunState, "complete_batch", counting)
    _run("jigsaw", True, step_interval=300.0)
    assert calls["batch"] > 0

    calls["batch"] = 0
    _run("jigsaw", False, step_interval=300.0)  # explicit scalar twin
    assert calls["batch"] == 0

    from repro.obs.sampler import TimeSeriesSampler

    calls["batch"] = 0
    _run("jigsaw", True, step_interval=300.0,
         sampler=TimeSeriesSampler(600.0))
    assert calls["batch"] == 0  # per-event telemetry forces scalar


def test_env_knob_selects_scalar_events(monkeypatch):
    monkeypatch.setenv("REPRO_NAIVE_EVENTS", "1")
    sim, _ = _run("jigsaw", True)  # env overrides the argument
    assert not sim.use_columnar_events
    monkeypatch.setenv("REPRO_NAIVE_EVENTS", "0")
    sim, _ = _run("jigsaw", True)  # "0" does not
    assert sim.use_columnar_events


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scheme=st.sampled_from(SCHEMES),
    order=st.sampled_from(QUEUE_ORDERS),
)
def test_twin_property_random_traces(seed, scheme, order):
    """Columnar and scalar drains agree on randomized traces too."""
    rng = random.Random(seed)
    jobs, arrival = [], 0.0
    for i in range(rng.randint(20, 80)):
        arrival += rng.expovariate(1 / 30)
        jobs.append(Job(
            id=i, size=rng.randint(1, 128),
            runtime=rng.uniform(1.0, 300.0), arrival=arrival,
        ))
    results = []
    for columnar in (True, False):
        tree = FatTree.from_radix(8)
        sim = Simulator(
            make_allocator(scheme, tree),
            queue_order=order,
            use_columnar_events=columnar,
        )
        results.append(sim.run(list(jobs), "prop"))
    col, sca = results
    assert [(j.job_id, j.start, j.end) for j in col.jobs] == [
        (j.job_id, j.start, j.end) for j in sca.jobs
    ]
    assert col.busy_area == sca.busy_area
    assert col.demand_area == sca.demand_area
    assert col.alloc_attempts == sca.alloc_attempts


# -- release_many vs sequential release ---------------------------------

def _random_claims(state, tree, rng, max_jobs=12):
    """Claim random node sets (plus some leaf links) for a few jobs."""
    free = list(range(tree.num_nodes))
    rng.shuffle(free)
    pos = 0
    job_ids = []
    for job_id in range(rng.randint(1, max_jobs)):
        k = rng.randint(1, 10)
        if pos + k > len(free):
            break
        nodes = free[pos:pos + k]
        pos += k
        links = []
        for leaf in sorted({n // tree.m1 for n in nodes}):
            i = rng.randrange(tree.m2)
            if state.leaf_up_mask[leaf] & (1 << i):
                links.append(LinkId(leaf, i))
        state.claim(job_id, nodes, tuple(links))
        job_ids.append(job_id)
    return job_ids


def _index_snapshot(state):
    return (
        state.node_owner.tolist(),
        state.free_per_leaf.tolist(),
        state.pod_free.tolist(),
        state.full_free_leaves.tolist(),
        state._leaf_ge.tolist(),
        state._leaf_buckets,
        state.leaf_up_mask,
        state.spine_free_mask,
        state.free_nodes_total,
        sorted(state._claims),
    )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    subset_seed=st.integers(min_value=0, max_value=100_000),
)
def test_release_many_matches_sequential_release(seed, subset_seed):
    """``release_many`` leaves every occupancy index in exactly the
    state N sequential ``release`` calls produce, and passes the full
    consistency audit."""
    tree = FatTree.from_radix(8)
    rng = random.Random(seed)
    bulk = ClusterState(tree)
    job_ids = _random_claims(bulk, tree, rng)
    seq = ClusterState(tree)
    _random_claims(seq, tree, random.Random(seed))
    victims = random.Random(subset_seed).sample(
        job_ids, random.Random(subset_seed).randint(0, len(job_ids))
    )
    recs_bulk = bulk.release_many(victims)
    recs_seq = [seq.release(v) for v in victims]
    assert [r.job_id for r in recs_bulk] == [r.job_id for r in recs_seq]
    assert [r.nodes for r in recs_bulk] == [r.nodes for r in recs_seq]
    assert _index_snapshot(bulk) == _index_snapshot(seq)
    bulk.audit()


def test_release_many_validates_before_mutating():
    tree = FatTree.from_radix(8)
    state = ClusterState(tree)
    state.claim(1, [0, 1])
    state.claim(2, [2, 3])
    before = _index_snapshot(state)
    with pytest.raises(AllocationError):
        state.release_many([1, 99])  # unknown id
    with pytest.raises(AllocationError):
        state.release_many([1, 1])  # duplicate id
    assert _index_snapshot(state) == before
    state.release_many([2, 1])
    assert state.is_idle()
    state.audit()


def test_allocator_release_many_groups_invalidation():
    """One batch release = one cache invalidation (when the cache held
    proven failures), same ``releases`` count as N scalar calls."""
    tree = FatTree.from_radix(8)
    alloc = make_allocator("jigsaw", tree)
    ids = []
    for job_id in range(1, 5):
        assert alloc.allocate(job_id, 30) is not None
        ids.append(job_id)
    # Prove a failure so the cache has something to invalidate.
    assert alloc.allocate(99, tree.num_nodes) is None
    assert alloc.feasibility_cache_size > 0
    inv_before = alloc.stats.cache_invalidations
    rel_before = alloc.stats.releases
    alloc.release_many(ids)
    assert alloc.stats.cache_invalidations == inv_before + 1
    assert alloc.stats.releases == rel_before + len(ids)
    assert alloc.feasibility_cache_size == 0
    assert alloc.state.is_idle()


def test_histogram_add_many_matches_add():
    h1, h2 = InstantHistogram(), InstantHistogram()
    vals = [0.0, 59.9999, 60.0, 79.9, 80.0, 90.0, 95.0, 97.9, 98.0,
            100.0, 50.0]
    for v in vals:
        h1.add(v)
    h2.add_many(np.array(vals))
    assert h1.counts == h2.counts
    assert h1.total == h2.total
    for bad in (101.0, -1.0):
        with pytest.raises(ValueError):
            h2.add_many(np.array([bad]))
