"""Standard Workload Format IO."""

import io

import pytest

from repro.traces import read_swf, synthetic_trace, write_swf
from repro.traces.swf import swf_roundtrip


def test_roundtrip_preserves_jobs():
    trace = synthetic_trace(16, num_jobs=50, seed=1)
    back = swf_roundtrip(trace)
    assert len(back) == len(trace)
    for a, b in zip(trace.jobs, back.jobs):
        assert a.id == b.id
        assert a.size == b.size
        assert abs(a.runtime - b.runtime) <= 0.5  # integer seconds in SWF
        assert a.arrival == b.arrival


def test_reads_comments_and_headers():
    text = "; header\n;MaxNodes: 10\n" + " ".join(
        ["1", "0", "-1", "100", "4"] + ["-1"] * 13
    )
    trace = read_swf(io.StringIO(text), name="t")
    assert len(trace) == 1
    assert trace.jobs[0].size == 4
    assert trace.jobs[0].runtime == 100.0


def test_requested_procs_fallback():
    fields = ["1", "0", "-1", "50", "-1", "-1", "-1", "8"] + ["-1"] * 10
    trace = read_swf(io.StringIO(" ".join(fields)))
    assert trace.jobs[0].size == 8


def test_cores_per_node_division():
    fields = ["1", "0", "-1", "50", "17"] + ["-1"] * 13
    trace = read_swf(io.StringIO(" ".join(fields)), cores_per_node=16)
    assert trace.jobs[0].size == 2  # ceil(17/16)


def test_skips_cancelled_jobs():
    lines = [
        " ".join(["1", "0", "-1", "0", "4"] + ["-1"] * 13),    # zero runtime
        " ".join(["2", "0", "-1", "50", "-1", "-1", "-1", "-1"] + ["-1"] * 10),
        " ".join(["3", "5", "-1", "50", "4"] + ["-1"] * 13),
    ]
    trace = read_swf(io.StringIO("\n".join(lines)))
    assert [j.id for j in trace.jobs] == [3]


def test_malformed_line_rejected():
    with pytest.raises(ValueError, match="expected 18 fields"):
        read_swf(io.StringIO("1 2 3"))


def test_empty_file_rejected():
    with pytest.raises(ValueError, match="no usable jobs"):
        read_swf(io.StringIO("; nothing\n"))


def test_discard_arrivals():
    fields = ["1", "500", "-1", "50", "4"] + ["-1"] * 13
    trace = read_swf(io.StringIO(" ".join(fields)), keep_arrivals=False)
    assert trace.jobs[0].arrival == 0.0
    assert not trace.has_arrivals


def test_file_io(tmp_path):
    trace = synthetic_trace(16, num_jobs=20, seed=2)
    path = tmp_path / "trace.swf"
    write_swf(trace, path)
    back = read_swf(path, system_nodes=1024)
    assert len(back) == 20
    assert back.system_nodes == 1024
    assert back.name == "trace"
