"""Experiment harness at tiny scale: wiring, rendering, invariants."""

import pytest

from repro.experiments import (
    fig6,
    fig7,
    fig8,
    render_table,
    table1,
    table2,
    table3,
)
from repro.experiments.report import normalized, render_series
from repro.experiments.runner import (
    ALL_TRACE_NAMES,
    ARRIVAL_SCALE,
    PAPER_JOB_COUNTS,
    default_scale,
    paper_setup,
    run_scheme,
)

TINY = 0.004  # a few hundred jobs per trace


class TestRunner:
    def test_paper_setup_clusters(self):
        assert paper_setup("Synth-16", scale=TINY).tree.num_nodes == 1024
        assert paper_setup("Synth-22", scale=TINY).tree.num_nodes == 2662
        assert paper_setup("Synth-28", scale=TINY).tree.num_nodes == 5488
        for name in ("Thunder", "Atlas", "Sep-Cab"):
            assert paper_setup(name, scale=TINY).tree.num_nodes == 1458

    def test_scaled_job_counts(self):
        setup = paper_setup("Thunder", scale=0.01)
        assert len(setup.trace) == int(105_764 * 0.01)
        tiny = paper_setup("Synth-16", scale=0.000001)
        assert len(tiny.trace) == 300  # the floor

    def test_arrival_scaling_applied(self):
        scaled = paper_setup("Aug-Cab", scale=TINY)
        raw = paper_setup("Sep-Cab", scale=TINY)
        assert "Aug-Cab" in ARRIVAL_SCALE and "Sep-Cab" not in ARRIVAL_SCALE
        assert scaled.trace.has_arrivals and raw.trace.has_arrivals

    def test_unknown_trace(self):
        with pytest.raises(ValueError):
            paper_setup("Frontier")

    def test_run_scheme_end_to_end(self):
        setup = paper_setup("Synth-16", scale=TINY)
        result = run_scheme(setup, "jigsaw", scenario="10%")
        assert result.scheme == "jigsaw"
        assert len(result.jobs) == len(setup.trace)
        assert 0 < result.steady_state_utilization <= 100

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert default_scale() is None
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert default_scale() == 1.0
        monkeypatch.delenv("REPRO_FULL_SCALE")
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ValueError):
            default_scale()

    def test_all_trace_names_cover_table1(self):
        assert set(ALL_TRACE_NAMES) == set(PAPER_JOB_COUNTS)


class TestArtifacts:
    def test_table1(self):
        rows = table1.table1_traces(names=["Synth-16", "Aug-Cab"], scale=TINY)
        text = table1.render(rows)
        assert "Synth-16" in text and "Aug-Cab" in text

    def test_fig6_tiny(self):
        rows = fig6.fig6_utilization(
            names=["Synth-16"], schemes=("baseline", "jigsaw"), scale=TINY
        )
        assert rows["Synth-16"]["baseline"] >= rows["Synth-16"]["jigsaw"] - 1.0
        assert "jigsaw" in fig6.render(rows)

    def test_table2_tiny(self):
        rows = table2.table2_instantaneous(scale=TINY)
        for scheme in ("laas", "jigsaw", "ta"):
            assert sum(rows[scheme].values()) > 0
        assert ">=98" in table2.render(rows)

    def test_fig7_tiny(self):
        results = fig7.fig7_turnaround(
            trace_names=["Aug-Cab"],
            schemes=("jigsaw",),
            scenarios=("none", "20%"),
            scale=TINY,
        )
        rows = results["Aug-Cab"]
        assert rows["20%"]["jigsaw"] < rows["none"]["jigsaw"]
        assert "jigsaw/large" in fig7.render(results)

    def test_fig8_tiny(self):
        results = fig8.fig8_makespan(
            trace_names=["Thunder"],
            schemes=("jigsaw",),
            scenarios=("none", "20%"),
            scale=TINY,
        )
        rows = results["Thunder"]
        assert rows["20%"]["jigsaw"] < rows["none"]["jigsaw"]

    def test_table3_tiny(self):
        rows = table3.table3_scheduling_time(
            trace_names=("Synth-16",), schemes=("jigsaw", "lc+s"), scale=TINY
        )
        assert rows["jigsaw"]["Synth-16"] > 0
        assert rows["lc+s"]["Synth-16"] > rows["jigsaw"]["Synth-16"]


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            "T", {"row": {"a": 1.234, "b": "x"}}, ["a", "b"], row_header="h"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text and "x" in text

    def test_render_series(self):
        text = render_series("S", {"s1": {"x": 1.0}}, ["x"])
        assert "s1" in text

    def test_normalized(self):
        assert normalized({"a": 2.0}, 4.0) == {"a": 0.5}
        with pytest.raises(ValueError):
            normalized({"a": 1.0}, 0.0)

    def test_render_bars(self):
        from repro.experiments.report import render_bars

        text = render_bars("T", {"jigsaw": 95.0, "ta": 85.0}, width=20)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 19  # 95 of 100 over 20 cells
        assert "95.0" in lines[1]
        with pytest.raises(ValueError):
            render_bars("T", {}, lo=5, hi=5)
        with pytest.raises(ValueError):
            render_bars("T", {}, width=0)

    def test_render_bars_clips(self):
        from repro.experiments.report import render_bars

        text = render_bars("T", {"x": 150.0}, width=10)
        assert text.splitlines()[1].count("#") == 10

    def test_render_sparkline(self):
        from repro.experiments.report import render_sparkline

        line = render_sparkline([0, 50, 100])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"
        with pytest.raises(ValueError):
            render_sparkline([1.0], lo=2, hi=2)

    def test_save_json(self, tmp_path):
        import json

        from repro.experiments.report import save_json

        path = tmp_path / "out" / "rows.json"
        save_json({"a": {"b": 1.5}}, path)
        assert json.loads(path.read_text()) == {"a": {"b": 1.5}}
