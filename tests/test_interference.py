"""Contention-aware runtime model."""

import pytest

from repro.core.registry import make_allocator
from repro.sched.interference import ContentionRuntimeModel
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree
from repro.traces import synthetic_trace


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


class TestModel:
    def test_isolating_allocations_always_factor_one(self, tree):
        model = ContentionRuntimeModel(tree, seed=0)
        allocator = make_allocator("jigsaw", tree)
        for jid, size in enumerate([10, 12, 8, 16, 9, 20], 1):
            alloc = allocator.allocate(jid, size)
            assert model.on_start(alloc, isolating=True) == pytest.approx(1.0)

    def test_ta_allocations_factor_one_via_dmodk(self, tree):
        model = ContentionRuntimeModel(tree, seed=0)
        allocator = make_allocator("ta", tree)
        for jid, size in enumerate([10, 12, 8, 16, 9, 20], 1):
            alloc = allocator.allocate(jid, size)
            if alloc is None:
                continue
            assert model.on_start(alloc, isolating=True) == pytest.approx(1.0)

    def test_baseline_contention_raises_factor(self, tree):
        model = ContentionRuntimeModel(
            tree, alpha=0.3, seed=0,
            mix=(("alltoall_sample", 1.0),),  # everyone communicates hard
        )
        allocator = make_allocator("baseline", tree)
        factors = []
        jid = 0
        while allocator.free_nodes >= 10:
            jid += 1
            alloc = allocator.allocate(jid, 10)
            if alloc is None:
                break
            factors.append(model.on_start(alloc, isolating=False))
        assert max(factors) > 1.0

    def test_release_clears_flows(self, tree):
        model = ContentionRuntimeModel(tree, seed=0,
                                       mix=(("shift", 1.0),))
        allocator = make_allocator("baseline", tree)
        alloc = allocator.allocate(1, 12)
        model.on_start(alloc, isolating=False)
        assert model.live_flows > 0
        model.on_release(1)
        assert model.live_flows == 0
        assert model.factor_of(1) == 1.0

    def test_quiet_jobs_cost_nothing(self, tree):
        model = ContentionRuntimeModel(tree, seed=0, mix=((None, 1.0),))
        allocator = make_allocator("baseline", tree)
        for jid in range(1, 8):
            alloc = allocator.allocate(jid, 12)
            assert model.on_start(alloc, isolating=False) == pytest.approx(1.0)
        assert model.live_flows == 0

    def test_pattern_assignment_stable(self, tree):
        a = ContentionRuntimeModel(tree, seed=3)
        b = ContentionRuntimeModel(tree, seed=3)
        for jid in range(50):
            assert a.pattern_for(jid) == b.pattern_for(jid)

    def test_validation(self, tree):
        with pytest.raises(ValueError):
            ContentionRuntimeModel(tree, alpha=-0.1)
        with pytest.raises(ValueError):
            ContentionRuntimeModel(tree, mix=(("warp", 1.0),))
        with pytest.raises(ValueError):
            ContentionRuntimeModel(tree, mix=((None, 0.0),))


class TestSimulatorIntegration:
    def test_single_job_runs_at_base_runtime(self, tree):
        model = ContentionRuntimeModel(tree, seed=0)
        sim = Simulator(make_allocator("baseline", tree), runtime_model=model)
        result = sim.run([Job(id=1, size=10, runtime=100.0)])
        assert result.jobs[0].end == pytest.approx(100.0)

    def test_speedup_scenarios_ignored_with_model(self, tree):
        model = ContentionRuntimeModel(tree, seed=0)
        job = Job(id=1, size=10, runtime=100.0, speedup=1.0)
        sim = Simulator(make_allocator("jigsaw", tree), runtime_model=model)
        result = sim.run([job])
        assert result.jobs[0].end == pytest.approx(100.0)  # not 50

    def test_derived_ordering_isolation_beats_baseline(self, tree):
        """The paper's conclusion with no assumed scenario: under derived
        contention, Jigsaw's turnaround beats Baseline's."""
        trace = synthetic_trace(6, num_jobs=400, seed=1,
                                max_size=tree.num_nodes)
        results = {}
        for scheme in ("baseline", "jigsaw"):
            model = ContentionRuntimeModel(tree, alpha=0.3, seed=0)
            sim = Simulator(make_allocator(scheme, tree), runtime_model=model)
            results[scheme] = sim.run(trace)
        assert (
            results["jigsaw"].mean_turnaround
            < results["baseline"].mean_turnaround
        )
        # and the model state drains completely
        assert not results["jigsaw"].unscheduled
