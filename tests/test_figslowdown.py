"""Slowdown-comparison experiment wiring."""

from repro.experiments import figslowdown


def test_comparison_tiny():
    rows = figslowdown.slowdown_comparison(
        radix=6, occupancy=0.7, patterns=("shift",), seeds=(0,)
    )
    assert set(rows) == {"baseline/shift", "jigsaw/shift"}
    assert rows["jigsaw/shift"]["max slowdown"] == 1.0
    assert rows["baseline/shift"]["mean slowdown"] >= 1.0


def test_render():
    rows = figslowdown.slowdown_comparison(
        radix=6, occupancy=0.5, patterns=("shift",), seeds=(0,)
    )
    text = figslowdown.render(rows)
    assert "mean slowdown" in text
