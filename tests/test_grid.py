"""The parallel experiment-grid engine: determinism, caching, fallback.

The engine's contract: (1) serial and parallel runs of the same grid
produce identical tables — byte-identical once rendered; (2) workers
cache the expensive trace/tree setup per process instead of rebuilding
it per cell; (3) ``workers=1`` (the default) never spawns a pool; and
(4) a setup reused across cells cannot leak one cell's speed-up
scenario into the next.
"""

import pytest

from repro.experiments import fig6, fig8, grid
from repro.experiments.grid import (
    GridCell,
    cell,
    resolve_workers,
    run_grid,
    run_sim_grid,
    sim_cell,
)
from repro.experiments.runner import paper_setup, run_scheme

TINY = 0.003


@pytest.fixture(autouse=True)
def fresh_setup_cache():
    grid.clear_setup_cache()
    yield
    grid.clear_setup_cache()


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3
        # the explicit argument wins over the environment
        assert resolve_workers(2) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestCellConstruction:
    def test_sim_cell_is_picklable_data(self):
        c = sim_cell(trace="Synth-16", scheme="jigsaw", scale=TINY)
        assert isinstance(c, GridCell)
        assert c.task == "repro.experiments.grid:_sim_task"
        assert c.params["trace"] == "Synth-16"

    def test_rejects_non_module_level_callables(self):
        with pytest.raises(ValueError):
            cell(lambda: None)


class TestOrderingAndEquivalence:
    def test_results_come_back_in_cell_order(self):
        cells = [
            sim_cell(trace="Synth-16", scheme=scheme, scale=TINY)
            for scheme in ("baseline", "jigsaw", "ta")
        ]
        results = run_sim_grid(cells, workers=2)
        assert [r.scheme for r in results] == ["baseline", "jigsaw", "ta"]

    def test_fig6_serial_equals_parallel(self):
        kwargs = dict(
            names=["Synth-16"], schemes=("baseline", "jigsaw"), scale=TINY
        )
        serial = fig6.fig6_utilization(workers=1, **kwargs)
        parallel = fig6.fig6_utilization(workers=2, **kwargs)
        assert serial == parallel  # exact float equality, not approx
        assert fig6.render(serial) == fig6.render(parallel)

    def test_fig8_serial_equals_parallel(self):
        kwargs = dict(
            trace_names=("Thunder",),
            schemes=("jigsaw", "ta"),
            scenarios=("none", "20%"),
            scale=TINY,
        )
        serial = fig8.fig8_makespan(workers=1, **kwargs)
        parallel = fig8.fig8_makespan(workers=2, **kwargs)
        assert serial == parallel
        assert fig8.render(serial) == fig8.render(parallel)


class TestSetupCache:
    def test_setup_built_once_per_key(self):
        cells = [
            sim_cell(trace="Synth-16", scheme=scheme, scale=TINY)
            for scheme in ("baseline", "jigsaw", "ta")
        ]
        outcomes = run_grid(cells, workers=1)
        assert outcomes[0].setup_cache_misses == 1
        assert outcomes[0].setup_cache_hits == 0
        for outcome in outcomes[1:]:
            assert outcome.setup_cache_hits == 1
            assert outcome.setup_cache_misses == 0
        stats = grid.setup_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 2

    def test_distinct_keys_miss(self):
        cells = [
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=TINY, seed=s)
            for s in (0, 1)
        ]
        outcomes = run_grid(cells, workers=1)
        assert [o.setup_cache_misses for o in outcomes] == [1, 1]

    def test_cached_setup_replays_identically(self):
        fresh = run_scheme(
            paper_setup("Synth-16", scale=TINY), "jigsaw"
        )
        cells = [
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=TINY)
            for _ in range(2)
        ]
        first, second = run_sim_grid(cells, workers=1)
        for result in (first, second):
            assert result.makespan == fresh.makespan
            assert result.jobs == fresh.jobs


class TestSerialFallback:
    def test_workers_one_never_spawns_a_pool(self, monkeypatch):
        import concurrent.futures as cf

        def boom(*args, **kwargs):
            raise AssertionError("workers=1 must not create a process pool")

        monkeypatch.setattr(cf, "ProcessPoolExecutor", boom)
        cells = [sim_cell(trace="Synth-16", scheme="baseline", scale=TINY)]
        results = run_sim_grid(cells, workers=1)
        assert results[0].scheme == "baseline"

    def test_env_workers_flow_through_run_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        cells = [
            sim_cell(trace="Synth-16", scheme=s, scale=TINY)
            for s in ("baseline", "jigsaw")
        ]
        results = run_sim_grid(cells)  # workers resolved from the env
        assert [r.scheme for r in results] == ["baseline", "jigsaw"]


class TestScenarioLeakage:
    def test_scenario_none_resets_speedups(self):
        # Regression: reusing an ExperimentSetup after a scenario run
        # used to leak the stale job.speedup values into a supposedly
        # scenario-free run (scenario=None skipped apply_scenario).
        setup = paper_setup("Synth-16", scale=TINY)
        clean = run_scheme(paper_setup("Synth-16", scale=TINY), "jigsaw")
        sped = run_scheme(setup, "jigsaw", scenario="20%")
        assert sped.makespan < clean.makespan
        again = run_scheme(setup, "jigsaw", scenario=None)
        assert all(job.speedup == 0.0 for job in setup.trace.jobs)
        assert again.makespan == clean.makespan
        assert again.jobs == clean.jobs

    def test_grid_cells_isolated_from_scenario_order(self):
        # A scenario cell before a scenario-free cell on the same cached
        # setup must not change the scenario-free result.
        cells = [
            sim_cell(trace="Synth-16", scheme="jigsaw", scenario="20%",
                     scale=TINY),
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=TINY),
        ]
        _, unsped = run_sim_grid(cells, workers=1)
        fresh = run_scheme(paper_setup("Synth-16", scale=TINY), "jigsaw")
        assert unsped.jobs == fresh.jobs


class TestCustomTasks:
    def test_table1_and_extension_rows_match_serial(self):
        from repro.experiments import table1
        from repro.experiments.figslowdown import slowdown_comparison

        serial = table1.table1_traces(names=["Synth-16"], scale=TINY)
        parallel = table1.table1_traces(
            names=["Synth-16"], scale=TINY, workers=2
        )
        assert serial == parallel

        rows_serial = slowdown_comparison(
            radix=4, occupancy=0.6, patterns=("shift",), seeds=(0,)
        )
        rows_parallel = slowdown_comparison(
            radix=4, occupancy=0.6, patterns=("shift",), seeds=(0,), workers=2
        )
        assert rows_serial == rows_parallel
