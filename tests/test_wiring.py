"""Physical wiring: the folded Clos is buildable from uniform switches."""

import pytest

from repro.topology.fattree import FatTree, XGFT
from repro.topology.wiring import cable_count, cables, port_usage, validate_wiring


@pytest.mark.parametrize("radix", [4, 8, 16])
def test_maximal_trees_wire_cleanly(radix):
    tree = FatTree.from_radix(radix)
    assert validate_wiring(tree) == []


def test_uniform_radix_claim(radix=8):
    """Section 2.1: every switch of a maximal tree has the same radix."""
    tree = FatTree.from_radix(radix)
    usage = port_usage(tree)
    leaf_ports = {u for s, u in usage.items() if s[0] == "leaf"}
    l2_ports = {u for s, u in usage.items() if s[0] == "l2"}
    spine_ports = {u for s, u in usage.items() if s[0] == "spine"}
    assert leaf_ports == l2_ports == spine_ports == {radix}


def test_cable_count_matches_enumeration():
    tree = FatTree.from_radix(8)
    assert cable_count(tree) == len(list(cables(tree)))
    # nodes + leaf uplinks + spine links
    assert cable_count(tree) == 128 + 128 + 128


def test_every_port_unique():
    tree = FatTree.from_radix(6)
    endpoints = [e for c in cables(tree) for e in (c.a, c.b)]
    assert len(set(endpoints)) == len(endpoints)


def test_non_maximal_tree_has_dark_spine_ports():
    # half the pods: spines use only m3 ports, fewer than the leaf radix
    tree = XGFT(m1=4, m2=4, m3=4)
    usage = port_usage(tree)
    spine_ports = {u for s, u in usage.items() if s[0] == "spine"}
    assert spine_ports == {4}
    assert validate_wiring(tree) == []  # still internally consistent


def test_cable_touches():
    tree = FatTree.from_radix(4)
    cable = next(iter(cables(tree)))
    assert cable.touches(("node", 0)) or cable.touches(("leaf", 0))
