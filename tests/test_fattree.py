"""Topology model: sizes, mappings, link enumeration, validation."""

import pytest

from repro.topology.fattree import PAPER_CLUSTERS, FatTree, LinkId, SpineLinkId, XGFT


class TestConstruction:
    def test_paper_clusters_node_counts(self):
        for radix, nodes in PAPER_CLUSTERS.items():
            assert FatTree.from_radix(radix).num_nodes == nodes

    def test_radix_must_be_even_positive(self):
        with pytest.raises(ValueError):
            FatTree.from_radix(7)
        with pytest.raises(ValueError):
            FatTree.from_radix(0)
        with pytest.raises(ValueError):
            FatTree.from_radix(-4)

    def test_xgft_params_positive(self):
        with pytest.raises(ValueError):
            XGFT(0, 2, 2)
        with pytest.raises(ValueError):
            XGFT(2, -1, 2)
        with pytest.raises(ValueError):
            XGFT(2, 2, 0)

    def test_for_min_nodes_picks_smallest(self):
        # The paper: 1458 is the smallest experiment cluster larger than
        # Thunder (1024), Atlas (1152) and Cab (1296).
        assert FatTree.for_min_nodes(1296).num_nodes == 1458
        assert FatTree.for_min_nodes(1024).num_nodes == 1024
        assert FatTree.for_min_nodes(1025).num_nodes == 1458
        with pytest.raises(ValueError):
            FatTree.for_min_nodes(0)

    def test_full_tree_is_balanced_xgft(self):
        t = FatTree.from_radix(12)
        assert t.m1 == t.m2 == 6
        assert t.m3 == 12
        assert t.radix == 12

    def test_describe_mentions_key_sizes(self):
        text = FatTree.from_radix(8).describe()
        assert "128 nodes" in text
        assert "8 pods" in text


class TestDerivedSizes:
    @pytest.fixture
    def tree(self):
        return FatTree.from_radix(8)  # m1=m2=4, m3=8

    def test_counts(self, tree):
        assert tree.nodes_per_leaf == 4
        assert tree.leaves_per_pod == 4
        assert tree.l2_per_pod == 4
        assert tree.spines_per_group == 4
        assert tree.num_pods == 8
        assert tree.nodes_per_pod == 16
        assert tree.num_leaves == 32
        assert tree.num_nodes == 128
        assert tree.num_l2 == 32
        assert tree.num_spines == 16

    def test_link_counts(self, tree):
        assert tree.num_leaf_links == 32 * 4
        assert tree.num_spine_links == 8 * 4 * 4
        assert len(list(tree.leaf_links())) == tree.num_leaf_links
        assert len(list(tree.spine_links())) == tree.num_spine_links

    def test_link_enumeration_unique(self, tree):
        leaf_links = list(tree.leaf_links())
        assert len(set(leaf_links)) == len(leaf_links)
        spine_links = list(tree.spine_links())
        assert len(set(spine_links)) == len(spine_links)


class TestMappings:
    @pytest.fixture
    def tree(self):
        return FatTree.from_radix(8)

    def test_node_to_leaf_to_pod(self, tree):
        for node in range(tree.num_nodes):
            leaf = tree.leaf_of_node(node)
            assert node in tree.nodes_of_leaf(leaf)
            pod = tree.pod_of_node(node)
            assert pod == tree.pod_of_leaf(leaf)
            assert node in tree.nodes_of_pod(pod)

    def test_indices_within_parent(self, tree):
        assert tree.node_index_in_leaf(0) == 0
        assert tree.node_index_in_leaf(tree.m1 - 1) == tree.m1 - 1
        assert tree.node_index_in_leaf(tree.m1) == 0
        assert tree.leaf_index_in_pod(tree.m2) == 0
        assert tree.leaf_index_in_pod(tree.m2 + 1) == 1

    def test_leaves_of_pod_partition_all_leaves(self, tree):
        seen = []
        for pod in range(tree.num_pods):
            seen.extend(tree.leaves_of_pod(pod))
        assert seen == list(range(tree.num_leaves))

    def test_global_switch_indices(self, tree):
        assert tree.l2_global_index(0, 0) == 0
        assert tree.l2_global_index(1, 0) == tree.l2_per_pod
        assert tree.spine_global_index(1, 2) == tree.spines_per_group + 2

    def test_out_of_range_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.leaf_of_node(tree.num_nodes)
        with pytest.raises(ValueError):
            tree.leaf_of_node(-1)
        with pytest.raises(ValueError):
            tree.pod_of_leaf(tree.num_leaves)
        with pytest.raises(ValueError):
            tree.nodes_of_pod(tree.num_pods)
        with pytest.raises(ValueError):
            tree.l2_global_index(0, tree.l2_per_pod)
        with pytest.raises(ValueError):
            tree.spine_global_index(0, tree.spines_per_group)


class TestLinkIds:
    def test_link_ids_are_tuples(self):
        assert LinkId(3, 1) == (3, 1)
        assert SpineLinkId(2, 1, 0) == (2, 1, 0)

    def test_links_of_leaf_and_l2(self):
        tree = FatTree.from_radix(8)
        assert list(tree.leaf_links_of_leaf(5)) == [LinkId(5, i) for i in range(4)]
        assert list(tree.spine_links_of_l2(2, 3)) == [
            SpineLinkId(2, 3, j) for j in range(4)
        ]
