"""Stateful property testing: the allocator as a state machine.

Hypothesis drives arbitrary allocate/release sequences against each
scheme and checks, after *every* step: the derived-state audit, node
conservation, the formal conditions of each live allocation, and strict
link isolation between live jobs.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.topology.fattree import FatTree

TREE = FatTree.from_radix(6)  # m1=m2=3, m3=6: 54 nodes, small but rich


class AllocatorMachine(RuleBasedStateMachine):
    scheme = "jigsaw"
    exact_nodes = True

    @initialize()
    def setup(self):
        self.allocator = make_allocator(self.scheme, TREE)
        self.live = {}
        self.next_id = 0

    @rule(size=st.integers(min_value=1, max_value=54))
    def allocate(self, size):
        self.next_id += 1
        alloc = self.allocator.allocate(self.next_id, size)
        if alloc is None:
            return
        self.live[self.next_id] = alloc
        violations = check_allocation(TREE, alloc, exact_nodes=self.exact_nodes)
        assert violations == [], (self.scheme, size, violations)

    @rule(data=st.data())
    def release(self, data):
        if not self.live:
            return
        job_id = data.draw(st.sampled_from(sorted(self.live)))
        self.allocator.release(job_id)
        del self.live[job_id]

    @invariant()
    def state_consistent(self):
        if not hasattr(self, "allocator"):
            return
        self.allocator.state.audit()
        used = sum(len(a.nodes) for a in self.live.values())
        assert self.allocator.free_nodes == TREE.num_nodes - used

    @invariant()
    def live_jobs_isolated(self):
        if not hasattr(self, "allocator") or not self.allocator.isolating:
            return
        seen_nodes = set()
        seen_leaf = set()
        seen_spine = set()
        for alloc in self.live.values():
            for n in alloc.nodes:
                assert n not in seen_nodes
                seen_nodes.add(n)
            for link in alloc.leaf_links:
                assert link not in seen_leaf
                seen_leaf.add(link)
            for link in alloc.spine_links:
                assert link not in seen_spine
                seen_spine.add(link)


class JigsawMachine(AllocatorMachine):
    scheme = "jigsaw"


class LaaSMachine(AllocatorMachine):
    scheme = "laas"
    exact_nodes = False


class LCSMachine(AllocatorMachine):
    scheme = "lc+s"


class TAMachine(AllocatorMachine):
    scheme = "ta"

    @rule(size=st.integers(min_value=1, max_value=54))
    def allocate(self, size):  # TA is not condition-bound; skip the check
        self.next_id += 1
        alloc = self.allocator.allocate(self.next_id, size)
        if alloc is not None:
            self.live[self.next_id] = alloc


_settings = settings(max_examples=15, stateful_step_count=30, deadline=None)

TestJigsawMachine = JigsawMachine.TestCase
TestJigsawMachine.settings = _settings
TestLaaSMachine = LaaSMachine.TestCase
TestLaaSMachine.settings = _settings
TestLCSMachine = LCSMachine.TestCase
TestLCSMachine.settings = _settings
TestTAMachine = TAMachine.TestCase
TestTAMachine.settings = _settings
