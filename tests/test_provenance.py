"""Per-job scheduling provenance: the twin-matrix reconstruction smoke.

Every charged allocation attempt and every skipped consideration must be
accounted for, per job, across all five schemes — and the account must
be identical between the vectorized/columnar engine and its scalar
twins, because provenance is bookkeeping, never a decision input.
"""

import csv
import math
import pathlib
import sys

import pytest

from repro.experiments.runner import paper_setup, run_scheme
from repro.sched.metrics import (
    PROVENANCE_COLUMNS,
    write_provenance_csv,
    write_provenance_jsonl,
)

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
from _check_obs_schema import check_provenance  # noqa: E402

SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")
TRACE = "Synth-16"
SCALE = 0.004

SKIP_COLUMNS = (
    "skip_cache", "skip_cut", "skip_screen", "skip_search", "skip_budget",
)


def _run(scheme, **twin_kwargs):
    setup = paper_setup(TRACE, scale=SCALE)
    return run_scheme(setup, scheme, provenance=True, **twin_kwargs)


def _assert_reconstructs(result, context):
    rows = result.provenance
    assert rows, context
    assert len(rows) == len({r["job_id"] for r in rows}), context

    started = [r for r in rows if r["start"] is not None]
    for row in rows:
        assert set(row) == set(PROVENANCE_COLUMNS), context
        skips = sum(row[c] for c in SKIP_COLUMNS)
        # Reconstruction: every consideration of this job is either one
        # of the classified skips or the single successful start.
        starts = 1 if row["start"] is not None else 0
        assert row["attempts"] == skips + starts, (context, row)
        if starts:
            assert row["state"] in ("running", "completed"), (context, row)
            assert row["first_eligible"] is not None, (context, row)
            assert row["first_eligible"] <= row["start"], (context, row)
            assert math.isclose(
                row["wait"], row["start"] - row["arrival"],
                rel_tol=0, abs_tol=1e-9,
            ), (context, row)
        else:
            assert row["end"] is None and row["wait"] is None, (context, row)
            assert row["state"] in ("pending", "queued", "unscheduled"), (
                context, row)

    # Aggregate ledger: charged attempts on the result are exactly the
    # per-job attempts; successes are exactly the started jobs.
    assert sum(r["attempts"] for r in rows) == result.alloc_attempts, context
    assert len(started) == len(result.jobs), context
    for job_id in result.unscheduled:
        (row,) = [r for r in rows if r["job_id"] == job_id]
        assert row["state"] == "unscheduled", (context, row)
        assert row["start"] is None, (context, row)


class TestTwinMatrix:
    """5-scheme x engine-twin smoke: provenance reconstructs every
    decision, identically on both engines."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scheme_reconstructs_and_twins_agree(self, scheme):
        vector = _run(scheme)
        scalar = _run(scheme, use_vector_pass=False,
                      use_columnar_events=False)
        _assert_reconstructs(vector, f"{scheme}/vector")
        _assert_reconstructs(scalar, f"{scheme}/scalar")
        # Provenance is passive: the twins make identical decisions.
        # The skip *breakdown* legitimately differs between engines (the
        # vector pass rejects via the batch screen where the scalar twin
        # reaches _search and fails there), so compare the decision
        # ledger: per-job lifecycle and total considerations.
        assert vector.alloc_attempts == scalar.alloc_attempts, scheme

        def ledger(rows):
            return [
                {**{k: r[k] for k in r if k not in SKIP_COLUMNS},
                 "skips": sum(r[c] for c in SKIP_COLUMNS)}
                for r in rows
            ]

        assert ledger(vector.provenance) == ledger(scalar.provenance), scheme

    def test_disabled_by_default(self):
        setup = paper_setup(TRACE, scale=SCALE)
        result = run_scheme(setup, "jigsaw")
        assert result.provenance == []


class TestExports:
    @pytest.fixture(scope="class")
    def result(self):
        return _run("jigsaw")

    def test_jsonl_roundtrip_passes_validator(self, result, tmp_path):
        path = tmp_path / "prov.jsonl"
        write_provenance_jsonl(result.provenance, path)
        assert check_provenance(str(path)) == []

    def test_jsonl_rejects_unknown_columns(self, tmp_path):
        with pytest.raises(ValueError):
            write_provenance_jsonl(
                [{"job_id": 1, "bogus": 2}], tmp_path / "bad.jsonl")

    def test_csv_header_matches_catalog(self, result, tmp_path):
        path = tmp_path / "prov.csv"
        write_provenance_csv(result.provenance, path)
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            n_rows = sum(1 for _ in reader)
        assert tuple(header) == PROVENANCE_COLUMNS
        assert n_rows == len(result.provenance)

    def test_validator_flags_bad_ledger(self, result, tmp_path):
        rows = [dict(r) for r in result.provenance]
        victim = next(r for r in rows if r["start"] is not None)
        victim["attempts"] = -1
        path = tmp_path / "bad.jsonl"
        write_provenance_jsonl(rows, path)
        assert check_provenance(str(path))


class TestWaitQuantiles:
    def test_quantiles_from_provenance_waits(self):
        result = _run("jigsaw")
        q = result.wait_quantiles()
        waits = sorted(j.wait for j in result.jobs)
        assert q[0.5] in waits and q[0.99] in waits
        assert q[0.5] <= q[0.95] <= q[0.99] <= waits[-1]

    def test_empty_result_is_zero_not_nan(self):
        # Regression: a run that started no jobs used to report NaN
        # quantiles, which leaked into the exported wait gauges.
        import dataclasses

        result = _run("baseline")
        empty = dataclasses.replace(result, jobs=[])
        q = empty.wait_quantiles()
        assert all(v == 0.0 for v in q.values())
        assert not any(math.isnan(v) for v in q.values())

    def test_bridge_exports_wait_gauges(self):
        from repro.obs.bridge import registry_for_result

        result = _run("jigsaw")
        snap = registry_for_result(result).snapshot()
        keys = [k for k in snap if k.startswith("repro_sched_wait_seconds")]
        assert len(keys) == 3
        for q in ("0.5", "0.95", "0.99"):
            assert any(f'quantile="{q}"' in k for k in keys), keys


class TestDegenerateRuns:
    """Satellite regression: zero-started runs must export cleanly.

    A run in which no job ever starts (empty trace, or a fault-starved
    cluster that strands every arrival) used to emit NaN wait gauges;
    the provenance writers must likewise never produce a line strict
    JSON or CSV parsers reject.
    """

    def _starved_result(self):
        from repro.core.registry import make_allocator
        from repro.sched.job import Job
        from repro.sched.resilience import FaultSpec, FaultTimeline
        from repro.sched.simulator import Simulator
        from repro.topology.fattree import FatTree

        tree = FatTree.from_radix(4)
        # Fail 12 of the 16 nodes forever before the only job arrives:
        # the size-8 job can never start and ends up unscheduled.
        timeline = FaultTimeline(tuple(
            FaultSpec(0.0, "node", (node,), float("inf"))
            for node in range(12)
        ))
        sim = Simulator(
            make_allocator("jigsaw", tree),
            provenance=True, fault_timeline=timeline,
        )
        return sim.run([Job(id=0, size=8, runtime=10.0, arrival=1.0)])

    def test_starved_run_has_no_nan_gauges(self):
        from repro.obs.bridge import registry_for_result

        result = self._starved_result()
        assert not result.jobs and result.unscheduled == [0]
        assert all(v == 0.0 for v in result.wait_quantiles().values())
        for key, value in registry_for_result(result).snapshot().items():
            assert not (isinstance(value, float) and math.isnan(value)), key

    def test_starved_run_exports_parse(self, tmp_path):
        import json

        result = self._starved_result()
        jsonl = tmp_path / "prov.jsonl"
        write_provenance_jsonl(result.provenance, jsonl)
        with open(jsonl) as fh:
            rows = [json.loads(line) for line in fh]  # strict JSON
        assert [r["state"] for r in rows] == ["unscheduled"]
        assert rows[0]["start"] is None and rows[0]["wait"] is None
        path = tmp_path / "prov.csv"
        write_provenance_csv(result.provenance, path)
        with open(path, newline="") as fh:
            parsed = list(csv.reader(fh))
        assert tuple(parsed[0]) == PROVENANCE_COLUMNS
        assert len(parsed) == 2 and "nan" not in ",".join(parsed[1]).lower()

    def test_nonfinite_fields_export_as_null(self, tmp_path):
        import json

        row = {k: None for k in PROVENANCE_COLUMNS}
        row.update(job_id=1, size=2, arrival=0.0, attempts=0,
                   skip_cache=0, skip_cut=0, skip_screen=0,
                   skip_search=0, skip_budget=0, state="queued",
                   first_eligible=float("nan"), wait=float("inf"))
        jsonl = tmp_path / "nonfinite.jsonl"
        write_provenance_jsonl([row], jsonl)
        with open(jsonl) as fh:
            (parsed,) = [json.loads(line, parse_constant=_reject_constant)
                         for line in fh]
        assert parsed["first_eligible"] is None and parsed["wait"] is None
        path = tmp_path / "nonfinite.csv"
        write_provenance_csv([row], path)
        with open(path, newline="") as fh:
            header, data = list(csv.reader(fh))
        assert data[header.index("first_eligible")] == ""
        assert data[header.index("wait")] == ""

    def test_empty_rows_export(self, tmp_path):
        jsonl = tmp_path / "empty.jsonl"
        write_provenance_jsonl([], jsonl)
        assert open(jsonl).read() == ""
        path = tmp_path / "empty.csv"
        write_provenance_csv([], path)
        with open(path, newline="") as fh:
            (header,) = list(csv.reader(fh))
        assert tuple(header) == PROVENANCE_COLUMNS


def _reject_constant(name):
    raise AssertionError(f"non-strict JSON constant emitted: {name}")
