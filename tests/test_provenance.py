"""Per-job scheduling provenance: the twin-matrix reconstruction smoke.

Every charged allocation attempt and every skipped consideration must be
accounted for, per job, across all five schemes — and the account must
be identical between the vectorized/columnar engine and its scalar
twins, because provenance is bookkeeping, never a decision input.
"""

import csv
import math
import pathlib
import sys

import pytest

from repro.experiments.runner import paper_setup, run_scheme
from repro.sched.metrics import (
    PROVENANCE_COLUMNS,
    write_provenance_csv,
    write_provenance_jsonl,
)

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
from _check_obs_schema import check_provenance  # noqa: E402

SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")
TRACE = "Synth-16"
SCALE = 0.004

SKIP_COLUMNS = (
    "skip_cache", "skip_cut", "skip_screen", "skip_search", "skip_budget",
)


def _run(scheme, **twin_kwargs):
    setup = paper_setup(TRACE, scale=SCALE)
    return run_scheme(setup, scheme, provenance=True, **twin_kwargs)


def _assert_reconstructs(result, context):
    rows = result.provenance
    assert rows, context
    assert len(rows) == len({r["job_id"] for r in rows}), context

    started = [r for r in rows if r["start"] is not None]
    for row in rows:
        assert set(row) == set(PROVENANCE_COLUMNS), context
        skips = sum(row[c] for c in SKIP_COLUMNS)
        # Reconstruction: every consideration of this job is either one
        # of the classified skips or the single successful start.
        starts = 1 if row["start"] is not None else 0
        assert row["attempts"] == skips + starts, (context, row)
        if starts:
            assert row["state"] in ("running", "completed"), (context, row)
            assert row["first_eligible"] is not None, (context, row)
            assert row["first_eligible"] <= row["start"], (context, row)
            assert math.isclose(
                row["wait"], row["start"] - row["arrival"],
                rel_tol=0, abs_tol=1e-9,
            ), (context, row)
        else:
            assert row["end"] is None and row["wait"] is None, (context, row)
            assert row["state"] in ("pending", "queued", "unscheduled"), (
                context, row)

    # Aggregate ledger: charged attempts on the result are exactly the
    # per-job attempts; successes are exactly the started jobs.
    assert sum(r["attempts"] for r in rows) == result.alloc_attempts, context
    assert len(started) == len(result.jobs), context
    for job_id in result.unscheduled:
        (row,) = [r for r in rows if r["job_id"] == job_id]
        assert row["state"] == "unscheduled", (context, row)
        assert row["start"] is None, (context, row)


class TestTwinMatrix:
    """5-scheme x engine-twin smoke: provenance reconstructs every
    decision, identically on both engines."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scheme_reconstructs_and_twins_agree(self, scheme):
        vector = _run(scheme)
        scalar = _run(scheme, use_vector_pass=False,
                      use_columnar_events=False)
        _assert_reconstructs(vector, f"{scheme}/vector")
        _assert_reconstructs(scalar, f"{scheme}/scalar")
        # Provenance is passive: the twins make identical decisions.
        # The skip *breakdown* legitimately differs between engines (the
        # vector pass rejects via the batch screen where the scalar twin
        # reaches _search and fails there), so compare the decision
        # ledger: per-job lifecycle and total considerations.
        assert vector.alloc_attempts == scalar.alloc_attempts, scheme

        def ledger(rows):
            return [
                {**{k: r[k] for k in r if k not in SKIP_COLUMNS},
                 "skips": sum(r[c] for c in SKIP_COLUMNS)}
                for r in rows
            ]

        assert ledger(vector.provenance) == ledger(scalar.provenance), scheme

    def test_disabled_by_default(self):
        setup = paper_setup(TRACE, scale=SCALE)
        result = run_scheme(setup, "jigsaw")
        assert result.provenance == []


class TestExports:
    @pytest.fixture(scope="class")
    def result(self):
        return _run("jigsaw")

    def test_jsonl_roundtrip_passes_validator(self, result, tmp_path):
        path = tmp_path / "prov.jsonl"
        write_provenance_jsonl(result.provenance, path)
        assert check_provenance(str(path)) == []

    def test_jsonl_rejects_unknown_columns(self, tmp_path):
        with pytest.raises(ValueError):
            write_provenance_jsonl(
                [{"job_id": 1, "bogus": 2}], tmp_path / "bad.jsonl")

    def test_csv_header_matches_catalog(self, result, tmp_path):
        path = tmp_path / "prov.csv"
        write_provenance_csv(result.provenance, path)
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            n_rows = sum(1 for _ in reader)
        assert tuple(header) == PROVENANCE_COLUMNS
        assert n_rows == len(result.provenance)

    def test_validator_flags_bad_ledger(self, result, tmp_path):
        rows = [dict(r) for r in result.provenance]
        victim = next(r for r in rows if r["start"] is not None)
        victim["attempts"] = -1
        path = tmp_path / "bad.jsonl"
        write_provenance_jsonl(rows, path)
        assert check_provenance(str(path))


class TestWaitQuantiles:
    def test_quantiles_from_provenance_waits(self):
        result = _run("jigsaw")
        q = result.wait_quantiles()
        waits = sorted(j.wait for j in result.jobs)
        assert q[0.5] in waits and q[0.99] in waits
        assert q[0.5] <= q[0.95] <= q[0.99] <= waits[-1]

    def test_empty_result_is_nan(self):
        import dataclasses

        result = _run("baseline")
        empty = dataclasses.replace(result, jobs=[])
        q = empty.wait_quantiles()
        assert all(math.isnan(v) for v in q.values())

    def test_bridge_exports_wait_gauges(self):
        from repro.obs.bridge import registry_for_result

        result = _run("jigsaw")
        snap = registry_for_result(result).snapshot()
        keys = [k for k in snap if k.startswith("repro_sched_wait_seconds")]
        assert len(keys) == 3
        for q in ("0.5", "0.95", "0.99"):
            assert any(f'quantile="{q}"' in k for k in keys), keys
