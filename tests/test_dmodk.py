"""D-mod-k static routing."""

import pytest

from repro.core.jigsaw import JigsawAllocator
from repro.routing.dmodk import Route, dmodk_route, route_stays_inside
from repro.topology.fattree import FatTree, LinkId, SpineLinkId


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


class TestPathStructure:
    def test_intra_leaf_uses_no_links(self, tree):
        r = dmodk_route(tree, 0, 1)
        assert r.hops == 0
        assert list(r.links()) == []

    def test_intra_pod_two_hops(self, tree):
        r = dmodk_route(tree, 0, tree.m1)  # leaf 0 -> leaf 1, same pod
        assert r.hops == 2
        assert r.spine_up is None
        assert r.up_leaf.leaf == 0
        assert r.down_leaf.leaf == 1
        assert r.up_leaf.l2_index == r.down_leaf.l2_index

    def test_cross_pod_four_hops(self, tree):
        dst = tree.nodes_per_pod  # first node of pod 1
        r = dmodk_route(tree, 0, dst)
        assert r.hops == 4
        assert r.spine_up.pod == 0
        assert r.spine_down.pod == 1
        assert r.spine_up.l2_index == r.spine_down.l2_index == r.up_leaf.l2_index
        assert r.spine_up.spine_index == r.spine_down.spine_index

    def test_self_route_rejected(self, tree):
        with pytest.raises(ValueError):
            dmodk_route(tree, 3, 3)

    def test_up_index_is_destination_mod(self, tree):
        # D-mod-k: the up index equals the destination's index in its leaf
        for dst in range(tree.m1, 2 * tree.m1):
            r = dmodk_route(tree, 0, dst)
            assert r.up_leaf.l2_index == dst % tree.m1


class TestShiftPermutationBalance:
    def test_shift_permutation_is_contention_free(self, tree):
        """The property D-mod-k was designed for [35]: node i sending to
        (i + k) mod N uses every link at most once in each direction."""
        n = tree.num_nodes
        for shift in (1, tree.m1, tree.nodes_per_pod, 37):
            seen = set()
            for src in range(n):
                dst = (src + shift) % n
                if src == dst:
                    continue
                for direction, link in dmodk_route(tree, src, dst).links():
                    key = (direction, link)
                    assert key not in seen, (shift, src, dst, key)
                    seen.add(key)


class TestRouteStaysInside:
    def test_allocation_traffic_can_escape(self, tree):
        """Figure 5 (left): plain D-mod-k routes over unallocated links."""
        allocator = JigsawAllocator(tree)
        allocator.allocate(1, 4)  # 1 full leaf... may be single-leaf
        a = allocator.allocate(2, 6)  # 2 leaves: has links
        escaped = 0
        nodes = sorted(a.nodes)
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                if not route_stays_inside(dmodk_route(tree, src, dst), a):
                    escaped += 1
        assert escaped > 0

    def test_route_inside_own_links(self, tree):
        a_route = Route(
            0, 4,
            up_leaf=LinkId(0, 0),
            down_leaf=LinkId(1, 0),
        )
        from repro.core.allocator import Allocation

        alloc = Allocation(
            job_id=1, size=2, nodes=(0, 4),
            leaf_links=(LinkId(0, 0), LinkId(1, 0)),
        )
        assert route_stays_inside(a_route, alloc)
        bad = Route(0, 4, up_leaf=LinkId(0, 1), down_leaf=LinkId(1, 0))
        assert not route_stays_inside(bad, alloc)

    def test_spine_links_checked(self, tree):
        from repro.core.allocator import Allocation

        route = Route(
            0, 16,
            up_leaf=LinkId(0, 0),
            spine_up=SpineLinkId(0, 0, 0),
            spine_down=SpineLinkId(1, 0, 0),
            down_leaf=LinkId(4, 0),
        )
        alloc = Allocation(
            job_id=1, size=2, nodes=(0, 16),
            leaf_links=(LinkId(0, 0), LinkId(4, 0)),
            spine_links=(SpineLinkId(0, 0, 0),),
        )
        assert not route_stays_inside(route, alloc)  # missing down spine
