"""Property-based tests (hypothesis) for the core invariants.

The paper's central formal claims, as properties over random inputs:

* every shape enumerated reconstructs its size and respects its bounds;
* every allocation any condition-bound scheme produces satisfies the
  formal conditions — under arbitrary interleavings of allocate/release;
* every legal allocation routes every permutation one-flow-per-link
  (rearrangeable non-blocking, Theorem 6);
* cluster state claim/release round-trips exactly.
"""

import random as _random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.core.shapes import three_level_shapes, two_level_shapes
from repro.routing.rearrange import route_permutation, verify_one_flow_per_link
from repro.sched.metrics import InstantHistogram
from repro.topology.fattree import FatTree
from repro.topology.state import ClusterState, indices_of, lowest_bits, mask_of

TREES = {8: FatTree.from_radix(8), 6: FatTree.from_radix(6)}

common = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Bitmask helpers
# ----------------------------------------------------------------------
@given(st.sets(st.integers(min_value=0, max_value=30)))
def test_mask_roundtrip(indices):
    assert set(indices_of(mask_of(indices))) == indices


@given(st.integers(min_value=0, max_value=2**20 - 1), st.integers(0, 20))
def test_lowest_bits_subset_and_count(mask, k):
    if mask.bit_count() < k:
        return
    low = lowest_bits(mask, k)
    assert low & mask == low
    assert low.bit_count() == k
    # they really are the lowest ones
    if low:
        highest_low = low.bit_length() - 1
        below = mask & ((1 << highest_low) - 1)
        assert below & ~low == 0


# ----------------------------------------------------------------------
# Shapes
# ----------------------------------------------------------------------
@common
@given(
    size=st.integers(min_value=1, max_value=64),
    m1=st.integers(min_value=1, max_value=10),
    m2=st.integers(min_value=1, max_value=10),
)
def test_two_level_shapes_reconstruct_size(size, m1, m2):
    for shape in two_level_shapes(size, m1, m2):
        assert shape.size == size
        assert 1 <= shape.nL <= m1
        assert shape.num_leaves <= m2
        assert 0 <= shape.nrL < shape.nL


@common
@given(
    size=st.integers(min_value=1, max_value=200),
    m1=st.integers(min_value=1, max_value=8),
    m2=st.integers(min_value=1, max_value=8),
    m3=st.integers(min_value=1, max_value=10),
    full=st.booleans(),
)
def test_three_level_shapes_reconstruct_size(size, m1, m2, m3, full):
    for shape in three_level_shapes(size, m1, m2, m3, full_leaves_only=full):
        assert shape.size == size
        assert shape.nrT < shape.nT
        assert shape.num_pods <= m3
        assert shape.LT <= m2
        if full:
            assert shape.nL == m1


# ----------------------------------------------------------------------
# State round-trips
# ----------------------------------------------------------------------
@common
@given(st.lists(st.integers(min_value=0, max_value=127), min_size=1,
                max_size=40, unique=True))
def test_claim_release_roundtrip(nodes):
    tree = TREES[8]
    state = ClusterState(tree)
    state.claim(1, nodes)
    state.audit()
    state.release(1)
    state.audit()
    assert state.is_idle()
    assert state.free_nodes_total == tree.num_nodes


# ----------------------------------------------------------------------
# Allocator conditions under arbitrary interleavings
# ----------------------------------------------------------------------
@st.composite
def workload(draw):
    """A random allocate/release interleaving."""
    ops = []
    live = []
    jid = 0
    for _ in range(draw(st.integers(5, 35))):
        if live and draw(st.booleans()):
            victim = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append(("release", victim))
        else:
            jid += 1
            size = draw(st.integers(1, 40))
            ops.append(("allocate", jid, size))
            live.append(jid)
    return ops


@common
@given(ops=workload(), scheme=st.sampled_from(["jigsaw", "laas", "lc+s", "lc"]))
def test_allocations_always_satisfy_conditions(ops, scheme):
    tree = TREES[8]
    allocator = make_allocator(scheme, tree)
    placed = set()
    for op in ops:
        if op[0] == "allocate":
            _, jid, size = op
            alloc = allocator.allocate(jid, size)
            if alloc is not None:
                placed.add(jid)
                violations = check_allocation(
                    tree, alloc, exact_nodes=(scheme != "laas")
                )
                assert violations == [], (scheme, size, violations)
        else:
            _, jid = op
            if jid in placed:
                allocator.release(jid)
                placed.discard(jid)
    allocator.state.audit()


@common
@given(ops=workload())
def test_ta_isolation_invariants(ops):
    """TA never lets two multi-leaf jobs share a leaf, nor two
    machine-spanning jobs share a pod."""
    tree = TREES[8]
    allocator = make_allocator("ta", tree)
    placed = set()
    for op in ops:
        if op[0] == "allocate":
            _, jid, size = op
            if allocator.allocate(jid, size) is not None:
                placed.add(jid)
        else:
            _, jid = op
            if jid in placed:
                allocator.release(jid)
                placed.discard(jid)
        # invariant: each leaf reserved by at most one multi-leaf job
        leaf_owners = {}
        pod_owners = {}
        for job_id, alloc in allocator.allocations.items():
            cls = allocator.classify(alloc.size)
            if cls == "t1":
                continue
            for leaf in {n // tree.m1 for n in alloc.nodes}:
                assert leaf not in leaf_owners, "two multi-leaf jobs on a leaf"
                leaf_owners[leaf] = job_id
            if cls == "t3":
                for pod in {tree.pod_of_node(n) for n in alloc.nodes}:
                    assert pod not in pod_owners, "two T3 jobs in a pod"
                    pod_owners[pod] = job_id


# ----------------------------------------------------------------------
# Rearrangeable non-blocking (Theorem 6)
# ----------------------------------------------------------------------
@common
@given(
    size=st.integers(min_value=2, max_value=100),
    prefill=st.lists(st.integers(1, 20), max_size=6),
    seed=st.integers(0, 10**6),
)
def test_any_jigsaw_allocation_routes_any_permutation(size, prefill, seed):
    tree = TREES[8]
    allocator = make_allocator("jigsaw", tree)
    for i, s in enumerate(prefill, start=1000):
        allocator.allocate(i, s)
    alloc = allocator.allocate(1, size)
    if alloc is None:
        return  # nothing to check: not placeable in this state
    rng = _random.Random(seed)
    nodes = sorted(alloc.nodes)
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    perm = dict(zip(nodes, shuffled))
    assignments = route_permutation(tree, alloc, perm)
    assert verify_one_flow_per_link(tree, alloc, assignments) == []


# ----------------------------------------------------------------------
# LaaS and Jigsaw agree wherever LaaS's reduction is lossless
# ----------------------------------------------------------------------
@common
@given(size=st.integers(min_value=1, max_value=16))
def test_laas_matches_jigsaw_within_one_pod(size):
    """On an empty machine, any job that fits one subtree gets an exact
    (padding-free) allocation from LaaS, same as Jigsaw — the reduction
    only costs when the job must span subtrees."""
    tree = TREES[8]
    laas = make_allocator("laas", tree)
    jig = make_allocator("jigsaw", tree)
    a1 = laas.allocate(1, size)
    a2 = jig.allocate(1, size)
    assert a1 is not None and a2 is not None
    assert a1.padding == 0
    assert len(a1.nodes) == len(a2.nodes) == size


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=200))
def test_histogram_conserves_samples(values):
    h = InstantHistogram()
    for v in values:
        h.add(v)
    assert h.total == len(values)
    assert sum(h.counts.values()) == len(values)


@common
@given(
    jobs=st.lists(
        st.tuples(
            st.integers(1, 20),                      # size
            st.floats(0.0, 50.0),                    # start
            st.floats(0.1, 60.0),                    # duration
        ),
        min_size=1,
        max_size=25,
    ),
    buckets=st.integers(1, 17),
)
def test_utilization_timeline_conserves_node_seconds(jobs, buckets):
    """The bucketed series integrates back to the exact node-seconds."""
    from repro.sched.metrics import (
        InstantHistogram,
        JobRecord,
        SimResult,
        utilization_timeline,
    )

    records = [
        JobRecord(i, size, 0.0, start, start + dur)
        for i, (size, start, dur) in enumerate(jobs)
    ]
    makespan = max(r.end for r in records)
    result = SimResult(
        scheme="s", trace_name="t", system_nodes=100, jobs=records,
        makespan=makespan, busy_area=0.0, demand_area=1.0,
        total_busy_area=0.0, instant=InstantHistogram(),
        sched_seconds=0.0, alloc_attempts=0,
    )
    series = utilization_timeline(result, buckets=buckets)
    width = makespan / buckets
    integrated = sum(u / 100.0 * 100 * width for _, u in series)
    exact = sum(r.size * (r.end - r.start) for r in records)
    assert integrated == pytest.approx(exact, rel=1e-6, abs=1e-6)
